//! Concurrent batch runner: many `{design, K-list, options}` jobs fanned
//! out over one [`Pool`], with per-job isolation.
//!
//! Each batch job prepares its design once (the front end of the paper's
//! methodology) and then sweeps its K list; parallelism is across jobs.
//! Jobs are independent, so the report rows are bit-identical regardless
//! of worker count. A job that panics, is cancelled, or overshoots its
//! deadline fails *alone*: its slot in the [`BatchReport`] carries the
//! typed [`JobError`] while every sibling job runs to completion.

use crate::flows::{prepare, FlowOptions};
use crate::sweep::{k_sweep_prepared, KSweepEntry};
use casyn_exec::{JobError, JobOptions, Pool};
use casyn_netlist::network::Network;
use std::time::{Duration, Instant};

/// One unit of batch work: a design, the K values to sweep, and the flow
/// options to sweep them under.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Display name (the CLI uses the design file stem).
    pub name: String,
    /// The design to synthesize.
    pub network: Network,
    /// K values to sweep (in order).
    pub ks: Vec<f64>,
    /// Flow options for every K of this job.
    pub opts: FlowOptions,
    /// Optional per-job deadline, measured from batch submission; a job
    /// that has not *started* in time fails with [`JobError::Deadline`].
    pub deadline: Option<Duration>,
}

/// The outcome of one batch job.
#[derive(Debug, Clone)]
pub struct BatchJobReport {
    /// The job's name.
    pub name: String,
    /// Sweep rows on success, or the typed failure.
    pub outcome: Result<Vec<KSweepEntry>, JobError>,
    /// Wall-clock the job spent running, in milliseconds (0 when the job
    /// never ran).
    pub wall_ms: f64,
}

/// The outcome of a whole batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// Per-job reports, in manifest order.
    pub jobs: Vec<BatchJobReport>,
    /// Wall-clock of the whole batch, in milliseconds.
    pub wall_ms: f64,
    /// Worker count of the pool that ran the batch.
    pub workers: usize,
}

impl BatchReport {
    /// Number of jobs that completed.
    pub fn num_ok(&self) -> usize {
        self.jobs.iter().filter(|j| j.outcome.is_ok()).count()
    }

    /// Number of jobs that failed (panicked / cancelled / deadline).
    pub fn num_failed(&self) -> usize {
        self.jobs.len() - self.num_ok()
    }
}

/// The default per-job runner: prepare the design once, then sweep its K
/// list serially within the job (the batch parallelizes across jobs).
pub fn run_batch_job(job: &BatchJob) -> Vec<KSweepEntry> {
    let prep = prepare(&job.network, &job.opts);
    k_sweep_prepared(&prep, &job.ks, &job.opts)
}

/// Runs every job on the pool with [`run_batch_job`].
pub fn run_batch(jobs: &[BatchJob], pool: &Pool) -> BatchReport {
    run_batch_with(jobs, pool, run_batch_job)
}

/// [`run_batch`] with a custom per-job runner — the seam fault-injection
/// tests (and the CLI's `inject_panic` debug knob) use to exercise the
/// batch error path with real panics.
pub fn run_batch_with<F>(jobs: &[BatchJob], pool: &Pool, runner: F) -> BatchReport
where
    F: Fn(&BatchJob) -> Vec<KSweepEntry> + Sync,
{
    let t0 = Instant::now();
    let outcomes = pool.try_par_map_with(
        jobs,
        |i| JobOptions { deadline: jobs[i].deadline, ..Default::default() },
        |job| {
            let t = Instant::now();
            let rows = runner(job);
            (rows, t.elapsed().as_secs_f64() * 1e3)
        },
    );
    let jobs = jobs
        .iter()
        .zip(outcomes)
        .map(|(job, outcome)| {
            let (outcome, wall_ms) = match outcome {
                Ok((rows, ms)) => (Ok(rows), ms),
                Err(e) => (Err(e), 0.0),
            };
            BatchJobReport { name: job.name.clone(), outcome, wall_ms }
        })
        .collect();
    BatchReport { jobs, wall_ms: t0.elapsed().as_secs_f64() * 1e3, workers: pool.workers() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn job(seed: u64, name: &str) -> BatchJob {
        let network = random_pla(&PlaGenConfig {
            inputs: 9,
            outputs: 5,
            terms: 28,
            min_literals: 3,
            max_literals: 5,
            mean_outputs_per_term: 1.3,
            seed,
        })
        .to_network();
        BatchJob {
            name: name.into(),
            network,
            ks: vec![0.0, 0.1],
            opts: FlowOptions::default(),
            deadline: None,
        }
    }

    #[test]
    fn batch_rows_match_direct_sweeps() {
        let jobs = [job(3, "a"), job(4, "b")];
        let report = run_batch(&jobs, &Pool::new(2));
        assert_eq!(report.num_ok(), 2);
        assert_eq!(report.workers, 2);
        for (j, r) in jobs.iter().zip(&report.jobs) {
            let direct = run_batch_job(j);
            let rows = r.outcome.as_ref().unwrap();
            assert_eq!(rows.len(), direct.len());
            for (a, b) in rows.iter().zip(&direct) {
                assert_eq!(a.k, b.k);
                assert_eq!(a.result.cell_area, b.result.cell_area);
                assert_eq!(a.result.route.violations, b.result.route.violations);
            }
            assert!(r.wall_ms > 0.0);
        }
    }

    #[test]
    fn panicking_job_fails_alone() {
        let jobs = [job(3, "ok-1"), job(4, "poisoned"), job(5, "ok-2")];
        let report = run_batch_with(&jobs, &Pool::new(2), |j| {
            if j.name == "poisoned" {
                panic!("injected batch fault");
            }
            run_batch_job(j)
        });
        assert_eq!(report.num_ok(), 2);
        assert_eq!(report.num_failed(), 1);
        assert!(
            matches!(
                &report.jobs[1].outcome,
                Err(JobError::Panicked(msg)) if msg == "injected batch fault"
            ),
            "the poisoned job must surface a typed error, got {:?}",
            report.jobs[1].outcome.as_ref().map(|_| "ok")
        );
        assert!(report.jobs[0].outcome.is_ok() && report.jobs[2].outcome.is_ok());
    }

    #[test]
    fn deadline_zero_fails_only_that_job() {
        let mut jobs = vec![job(3, "fast"), job(4, "doomed")];
        jobs[1].deadline = Some(Duration::ZERO);
        let report = run_batch(&jobs, &Pool::serial());
        assert!(report.jobs[0].outcome.is_ok());
        assert!(matches!(report.jobs[1].outcome, Err(JobError::Deadline)));
    }

    #[test]
    fn batch_is_deterministic_across_worker_counts() {
        let jobs = [job(7, "x"), job(8, "y"), job(9, "z")];
        let serial = run_batch(&jobs, &Pool::serial());
        let parallel = run_batch(&jobs, &Pool::new(4));
        for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
            let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.k, y.k);
                assert_eq!(x.result.cell_area, y.result.cell_area);
                assert_eq!(x.result.num_cells, y.result.num_cells);
                assert_eq!(x.result.route.total_wirelength, y.result.route.total_wirelength);
            }
        }
    }
}
