//! The run ledger: content-addressed `casyn.run.v1` records of flow
//! invocations, and the cross-run diff behind `casyn diff`.
//!
//! Single-run artifacts (telemetry, traces, heat maps) answer "what did
//! this run do"; the ledger answers "what changed between runs". Every
//! flow or batch invocation can append one [`RunRecord`] — design
//! identity, parameters, the per-K quality metrics of the paper's
//! tables, and per-stage wall/allocation telemetry — to a ledger
//! directory. Records are content-addressed: the file name embeds an
//! FNV-1a hash of the *stable* fields (everything except wall-clock and
//! allocator readings), so two runs of the same design with the same
//! parameters and bit-identical results land on the same address, and
//! any divergence is visible in the directory listing before any diff
//! runs.
//!
//! [`diff_records`] compares two records field by field. Stable fields
//! (areas, violations, overflow, iterations, wirelength, HPWL, timing
//! arrival) must match exactly — the determinism contract says they are
//! bit-identical for identical inputs — and every mismatch is a *delta*.
//! Wall-clock and allocation figures are machine noise, so they are
//! compared against a tolerance band and reported separately as
//! informational *timing notes* that never fail a diff.

use crate::content_key::KeyBuilder;
use crate::flows::FlowResult;
use crate::sweep::KSweepEntry;
use crate::telemetry::FlowTelemetry;
use casyn_netlist::mapped::MappedNetlist;
use casyn_netlist::Point;
use casyn_obs::json::JsonValue;
use casyn_place::metrics::hpwl;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub use crate::content_key::fnv1a64;

/// The parameters that identify a run configuration. Part of the
/// content hash: two runs with different parameters never share an
/// address.
#[derive(Debug, Clone, PartialEq)]
pub struct RunParams {
    /// Mapping scheme (`congestion`, `dagon`, `sis`).
    pub scheme: String,
    /// Placement backend (`kway`, `bisect`).
    pub placer: String,
    /// Metal layers available for routing.
    pub layers: usize,
    /// Target area utilization used to derive the floorplan.
    pub target_utilization: f64,
    /// The K values run, in order.
    pub ks: Vec<f64>,
    /// Whether technology-independent optimization ran.
    pub optimize: bool,
}

/// One stage's telemetry inside a [`RunRow`]. Wall and allocation
/// figures are machine noise: excluded from the content hash, compared
/// only against the tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRow {
    /// Stage name (`place`, `map`, `route`, …).
    pub stage: String,
    /// Wall-clock milliseconds.
    pub wall_ms: f64,
    /// Bytes allocated during the stage.
    pub alloc_bytes: u64,
    /// Peak live bytes during the stage.
    pub peak_bytes: u64,
}

/// The outcome of one flow run (one K value) inside a [`RunRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunRow {
    /// The congestion-cost weight K.
    pub k: f64,
    /// Total cell area in µm².
    pub cell_area: f64,
    /// Instance count.
    pub num_cells: usize,
    /// Cell area / die area × 100.
    pub utilization_pct: f64,
    /// Routing violations (rounded overflow).
    pub violations: usize,
    /// Raw residual overflow in track-segments.
    pub overflow: f64,
    /// Negotiation iterations the router ran.
    pub route_iterations: usize,
    /// Routed wirelength in µm.
    pub wirelength_um: f64,
    /// Half-perimeter wirelength of the placed netlist in µm.
    pub hpwl_um: f64,
    /// Critical-path arrival in ns.
    pub critical_ns: f64,
    /// Per-stage telemetry (timing-band fields only).
    pub stages: Vec<StageRow>,
}

/// One ledger entry: a flow/batch invocation over one design.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Design name (file stem or batch job name).
    pub design: String,
    /// FNV-1a hash of the design source bytes.
    pub design_hash: u64,
    /// Run configuration.
    pub params: RunParams,
    /// One row per K value run.
    pub rows: Vec<RunRow>,
}

/// Why a ledger record could not be read back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LedgerError {
    /// The document is not valid JSON.
    Syntax {
        /// 1-based line of the parse failure.
        line: usize,
        /// 1-based column of the parse failure.
        col: usize,
        /// Parser diagnostic.
        reason: String,
    },
    /// The document parsed but a field is missing or malformed.
    Field {
        /// Path of the offending field, e.g. `rows[1].overflow`.
        field: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for LedgerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LedgerError::Syntax { line, col, reason } => {
                write!(f, "ledger: line {line}, col {col}: {reason}")
            }
            LedgerError::Field { field, reason } => {
                write!(f, "ledger: field \"{field}\": {reason}")
            }
        }
    }
}

impl std::error::Error for LedgerError {}

/// Half-perimeter wirelength of a mapped netlist's nets, from the same
/// pin model the router uses (driver, cell sinks, primary-output pins).
pub fn mapped_hpwl(nl: &MappedNetlist) -> f64 {
    let mut total = 0.0;
    for net in nl.nets() {
        let mut pins: Vec<Point> = vec![nl.signal_pos(net.driver)];
        for (c, _) in &net.sinks {
            pins.push(nl.cells()[*c as usize].pos);
        }
        for o in &net.po_sinks {
            pins.push(nl.output_pos(*o));
        }
        total += hpwl(&pins);
    }
    total
}

fn stage_rows(t: &FlowTelemetry) -> Vec<StageRow> {
    t.stages
        .iter()
        .map(|s| StageRow {
            stage: s.stage.clone(),
            wall_ms: s.wall_ms,
            alloc_bytes: s.alloc_bytes,
            peak_bytes: s.peak_bytes,
        })
        .collect()
}

impl RunRow {
    /// Summarizes one flow result at weight `k`.
    pub fn from_result(k: f64, r: &FlowResult) -> RunRow {
        RunRow {
            k,
            cell_area: r.cell_area,
            num_cells: r.num_cells,
            utilization_pct: r.utilization_pct,
            violations: r.route.violations,
            overflow: r.route.overflow,
            route_iterations: r.route.iterations,
            wirelength_um: r.route.total_wirelength,
            hpwl_um: mapped_hpwl(&r.netlist),
            critical_ns: r.sta.critical_arrival(),
            stages: stage_rows(&r.telemetry),
        }
    }
}

impl RunRecord {
    /// Builds a record from K-sweep entries (a single flow run is a
    /// one-entry sweep).
    pub fn from_sweep(
        design: &str,
        design_hash: u64,
        params: RunParams,
        rows: &[KSweepEntry],
    ) -> RunRecord {
        RunRecord {
            design: design.to_string(),
            design_hash,
            params,
            rows: rows.iter().map(|e| RunRow::from_result(e.k, &e.result)).collect(),
        }
    }

    /// The content address: FNV-1a over the stable fields (design
    /// identity, parameters, quality metrics), excluding wall-clock and
    /// allocation telemetry. Identical-input runs of a deterministic
    /// build hash identically. Derivation lives in
    /// [`crate::content_key`], shared with the serve artifact cache.
    pub fn content_hash(&self) -> u64 {
        let p = &self.params;
        let mut b = KeyBuilder::new("casyn.run.v1")
            .str(&self.design)
            .hash(self.design_hash)
            .str(&p.scheme)
            .str(&p.placer)
            .int(p.layers as u64)
            .num(p.target_utilization)
            .bool(p.optimize)
            .nums(&p.ks);
        for r in &self.rows {
            b = b
                .num(r.k)
                .num(r.cell_area)
                .int(r.num_cells as u64)
                .num(r.utilization_pct)
                .int(r.violations as u64)
                .num(r.overflow)
                .int(r.route_iterations as u64)
                .num(r.wirelength_um)
                .num(r.hpwl_um)
                .num(r.critical_ns);
            // stage names are stable (the pipeline shape), readings are not
            b = b.int(r.stages.len() as u64);
            for s in &r.stages {
                b = b.str(&s.stage);
            }
        }
        b.finish()
    }

    /// Serializes the record as a `casyn.run.v1` document. Hashes are
    /// hex strings (JSON numbers lose u64 precision past 2⁵³).
    pub fn to_json(&self) -> JsonValue {
        let params = JsonValue::object(vec![
            ("scheme".into(), JsonValue::Str(self.params.scheme.clone())),
            ("placer".into(), JsonValue::Str(self.params.placer.clone())),
            ("layers".into(), JsonValue::Number(self.params.layers as f64)),
            ("target_utilization".into(), JsonValue::Number(self.params.target_utilization)),
            (
                "ks".into(),
                JsonValue::Array(self.params.ks.iter().map(|&k| JsonValue::Number(k)).collect()),
            ),
            ("optimize".into(), JsonValue::Bool(self.params.optimize)),
        ]);
        let rows = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::object(vec![
                    ("k".into(), JsonValue::Number(r.k)),
                    ("cell_area".into(), JsonValue::Number(r.cell_area)),
                    ("num_cells".into(), JsonValue::Number(r.num_cells as f64)),
                    ("utilization_pct".into(), JsonValue::Number(r.utilization_pct)),
                    ("violations".into(), JsonValue::Number(r.violations as f64)),
                    ("overflow".into(), JsonValue::Number(r.overflow)),
                    ("route_iterations".into(), JsonValue::Number(r.route_iterations as f64)),
                    ("wirelength_um".into(), JsonValue::Number(r.wirelength_um)),
                    ("hpwl_um".into(), JsonValue::Number(r.hpwl_um)),
                    ("critical_ns".into(), JsonValue::Number(r.critical_ns)),
                    (
                        "stages".into(),
                        JsonValue::Array(
                            r.stages
                                .iter()
                                .map(|s| {
                                    JsonValue::object(vec![
                                        ("stage".into(), JsonValue::Str(s.stage.clone())),
                                        ("wall_ms".into(), JsonValue::Number(s.wall_ms)),
                                        (
                                            "alloc_bytes".into(),
                                            JsonValue::Number(s.alloc_bytes as f64),
                                        ),
                                        (
                                            "peak_bytes".into(),
                                            JsonValue::Number(s.peak_bytes as f64),
                                        ),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.run.v1".into())),
            ("design".into(), JsonValue::Str(self.design.clone())),
            ("design_hash".into(), JsonValue::Str(format!("{:016x}", self.design_hash))),
            ("content_hash".into(), JsonValue::Str(format!("{:016x}", self.content_hash()))),
            ("params".into(), params),
            ("rows".into(), JsonValue::Array(rows)),
        ])
    }

    /// Reads a `casyn.run.v1` document back — the inverse of
    /// [`RunRecord::to_json`].
    pub fn from_json(text: &str) -> Result<RunRecord, LedgerError> {
        let doc = JsonValue::parse(text).map_err(|e| LedgerError::Syntax {
            line: e.line,
            col: e.col,
            reason: e.reason,
        })?;
        let field = |name: &str, reason: &str| LedgerError::Field {
            field: name.to_string(),
            reason: reason.to_string(),
        };
        let str_of = |v: &JsonValue, name: &str| -> Result<String, LedgerError> {
            v.get(name)
                .and_then(|x| x.as_str())
                .map(str::to_string)
                .ok_or_else(|| field(name, "missing or not a string"))
        };
        let num_of = |v: &JsonValue, name: &str| -> Result<f64, LedgerError> {
            v.get(name)
                .and_then(|x| x.as_f64())
                .filter(|x| x.is_finite())
                .ok_or_else(|| field(name, "missing or not a finite number"))
        };
        let schema = str_of(&doc, "schema")?;
        if schema != "casyn.run.v1" {
            return Err(field("schema", &format!("expected \"casyn.run.v1\", got \"{schema}\"")));
        }
        let design = str_of(&doc, "design")?;
        let hash_text = str_of(&doc, "design_hash")?;
        let design_hash = u64::from_str_radix(&hash_text, 16)
            .map_err(|_| field("design_hash", "not a hex integer"))?;
        let p = doc.get("params").ok_or_else(|| field("params", "missing"))?;
        let ks = p
            .get("ks")
            .and_then(|v| v.as_array())
            .ok_or_else(|| field("params.ks", "missing or not an array"))?
            .iter()
            .enumerate()
            .map(|(i, v)| {
                v.as_f64().ok_or_else(|| field(&format!("params.ks[{i}]"), "not a number"))
            })
            .collect::<Result<Vec<f64>, _>>()?;
        let params = RunParams {
            scheme: str_of(p, "scheme")?,
            placer: str_of(p, "placer")?,
            layers: num_of(p, "layers")? as usize,
            target_utilization: num_of(p, "target_utilization")?,
            ks,
            optimize: p
                .get("optimize")
                .and_then(|v| v.as_bool())
                .ok_or_else(|| field("params.optimize", "missing or not a bool"))?,
        };
        let rows_json = doc
            .get("rows")
            .and_then(|v| v.as_array())
            .ok_or_else(|| field("rows", "missing or not an array"))?;
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, r) in rows_json.iter().enumerate() {
            let at = |name: &str| format!("rows[{i}].{name}");
            let stages_json = r
                .get("stages")
                .and_then(|v| v.as_array())
                .ok_or_else(|| field(&at("stages"), "missing or not an array"))?;
            let mut stages = Vec::with_capacity(stages_json.len());
            for (j, s) in stages_json.iter().enumerate() {
                let sat = |name: &str| format!("rows[{i}].stages[{j}].{name}");
                stages.push(StageRow {
                    stage: s
                        .get("stage")
                        .and_then(|v| v.as_str())
                        .map(str::to_string)
                        .ok_or_else(|| field(&sat("stage"), "missing or not a string"))?,
                    wall_ms: s
                        .get("wall_ms")
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| field(&sat("wall_ms"), "missing or not a number"))?,
                    alloc_bytes: s.get("alloc_bytes").and_then(|v| v.as_f64()).unwrap_or(0.0)
                        as u64,
                    peak_bytes: s.get("peak_bytes").and_then(|v| v.as_f64()).unwrap_or(0.0) as u64,
                });
            }
            rows.push(RunRow {
                k: num_of(r, "k").map_err(|_| field(&at("k"), "missing or not a number"))?,
                cell_area: num_of(r, "cell_area")
                    .map_err(|_| field(&at("cell_area"), "missing or not a number"))?,
                num_cells: num_of(r, "num_cells")
                    .map_err(|_| field(&at("num_cells"), "missing or not a number"))?
                    as usize,
                utilization_pct: num_of(r, "utilization_pct")
                    .map_err(|_| field(&at("utilization_pct"), "missing or not a number"))?,
                violations: num_of(r, "violations")
                    .map_err(|_| field(&at("violations"), "missing or not a number"))?
                    as usize,
                overflow: num_of(r, "overflow")
                    .map_err(|_| field(&at("overflow"), "missing or not a number"))?,
                route_iterations: num_of(r, "route_iterations")
                    .map_err(|_| field(&at("route_iterations"), "missing or not a number"))?
                    as usize,
                wirelength_um: num_of(r, "wirelength_um")
                    .map_err(|_| field(&at("wirelength_um"), "missing or not a number"))?,
                hpwl_um: num_of(r, "hpwl_um")
                    .map_err(|_| field(&at("hpwl_um"), "missing or not a number"))?,
                critical_ns: num_of(r, "critical_ns")
                    .map_err(|_| field(&at("critical_ns"), "missing or not a number"))?,
                stages,
            });
        }
        Ok(RunRecord { design, design_hash, params, rows })
    }

    /// Appends the record to a ledger directory as
    /// `<design>-<content-hash>.json`, creating the directory if needed.
    /// The write goes through [`crate::durable::write_atomic`]
    /// (write-then-fsync-then-rename); re-appending an identical run
    /// rewrites the same address and is idempotent. Returns the
    /// record's path.
    pub fn append(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let name = format!("{}-{:016x}.json", sanitize(&self.design), self.content_hash());
        let path = dir.join(&name);
        let text = self.to_json().to_string_pretty() + "\n";
        crate::durable::write_atomic(&path, text.as_bytes())?;
        Ok(path)
    }

    /// Reads a record from a file previously written by
    /// [`RunRecord::append`] (or any `casyn.run.v1` document).
    pub fn load(path: &Path) -> Result<RunRecord, LedgerError> {
        let text = fs::read_to_string(path).map_err(|e| LedgerError::Field {
            field: path.display().to_string(),
            reason: format!("unreadable: {e}"),
        })?;
        RunRecord::from_json(&text)
    }
}

fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_alphanumeric() || c == '-' || c == '_' { c } else { '_' })
        .collect()
}

/// The tolerance band for the timing-noise fields of a diff. A reading
/// is an outlier when it exceeds `other × (1 + ratio) + abs`.
#[derive(Debug, Clone, Copy)]
pub struct DiffTolerance {
    /// Relative band on wall/alloc readings.
    pub ratio: f64,
    /// Absolute slack in milliseconds (absorbs timer noise on fast
    /// stages).
    pub abs_ms: f64,
    /// Absolute slack in bytes.
    pub abs_bytes: f64,
}

impl Default for DiffTolerance {
    fn default() -> Self {
        // generous: cross-run wall noise is routinely 2x on small stages
        DiffTolerance { ratio: 1.0, abs_ms: 5.0, abs_bytes: (4 << 20) as f64 }
    }
}

/// The outcome of comparing two [`RunRecord`]s.
#[derive(Debug, Clone, Default)]
pub struct RunDiff {
    /// Stable-field mismatches — real differences between the runs.
    /// Non-empty means the runs diverged.
    pub deltas: Vec<String>,
    /// Timing/allocation readings outside the tolerance band —
    /// informational only, never a divergence by themselves.
    pub timing_notes: Vec<String>,
}

impl RunDiff {
    /// True when every stable field matched.
    pub fn is_clean(&self) -> bool {
        self.deltas.is_empty()
    }
}

/// Compares two records stage by stage. Stable quality metrics must be
/// exactly equal (the determinism contract); wall/alloc readings are
/// held only to `tol`.
pub fn diff_records(a: &RunRecord, b: &RunRecord, tol: &DiffTolerance) -> RunDiff {
    let mut d = RunDiff::default();
    let mut delta = |name: &str, av: String, bv: String| {
        d.deltas.push(format!("{name}: {av} != {bv}"));
    };
    if a.design != b.design {
        delta("design", a.design.clone(), b.design.clone());
    }
    if a.design_hash != b.design_hash {
        delta("design_hash", format!("{:016x}", a.design_hash), format!("{:016x}", b.design_hash));
    }
    if a.params != b.params {
        delta("params", format!("{:?}", a.params), format!("{:?}", b.params));
    }
    if a.rows.len() != b.rows.len() {
        delta("rows", a.rows.len().to_string(), b.rows.len().to_string());
    }
    for (ra, rb) in a.rows.iter().zip(&b.rows) {
        let k = ra.k;
        let at = |name: &str| format!("k={k} {name}");
        if ra.k != rb.k {
            delta("row k", ra.k.to_string(), rb.k.to_string());
            continue;
        }
        let exact: [(&str, f64, f64); 8] = [
            ("cell_area", ra.cell_area, rb.cell_area),
            ("num_cells", ra.num_cells as f64, rb.num_cells as f64),
            ("utilization_pct", ra.utilization_pct, rb.utilization_pct),
            ("violations", ra.violations as f64, rb.violations as f64),
            ("overflow", ra.overflow, rb.overflow),
            ("route_iterations", ra.route_iterations as f64, rb.route_iterations as f64),
            ("wirelength_um", ra.wirelength_um, rb.wirelength_um),
            ("hpwl_um", ra.hpwl_um, rb.hpwl_um),
        ];
        for (name, av, bv) in exact {
            if av != bv {
                delta(&at(name), av.to_string(), bv.to_string());
            }
        }
        if ra.critical_ns != rb.critical_ns {
            delta(&at("critical_ns"), ra.critical_ns.to_string(), rb.critical_ns.to_string());
        }
        // timing band: match stages by name; shape changes are deltas,
        // readings are notes
        let stage_names = |r: &RunRow| r.stages.iter().map(|s| s.stage.clone()).collect::<Vec<_>>();
        if stage_names(ra) != stage_names(rb) {
            delta(&at("stages"), stage_names(ra).join(","), stage_names(rb).join(","));
            continue;
        }
        for (sa, sb) in ra.stages.iter().zip(&rb.stages) {
            let band = |x: f64, y: f64, abs: f64| -> bool {
                let hi = y * (1.0 + tol.ratio) + abs;
                let lo = (y / (1.0 + tol.ratio) - abs).max(0.0);
                x > hi || x < lo
            };
            if band(sa.wall_ms, sb.wall_ms, tol.abs_ms) {
                d.timing_notes.push(format!(
                    "k={k} {}: wall {:.3} ms vs {:.3} ms (band ±{:.0}% + {} ms)",
                    sa.stage,
                    sa.wall_ms,
                    sb.wall_ms,
                    100.0 * tol.ratio,
                    tol.abs_ms
                ));
            }
            if band(sa.alloc_bytes as f64, sb.alloc_bytes as f64, tol.abs_bytes)
                || band(sa.peak_bytes as f64, sb.peak_bytes as f64, tol.abs_bytes)
            {
                d.timing_notes.push(format!(
                    "k={k} {}: alloc {}/{} B vs {}/{} B",
                    sa.stage, sa.alloc_bytes, sa.peak_bytes, sb.alloc_bytes, sb.peak_bytes
                ));
            }
        }
    }
    d
}

/// Formats a diff for the terminal: `!` marks stable deltas, `~` marks
/// tolerance-band timing notes, and the verdict line states the delta
/// count (`0 stable deltas` is the determinism smoke's pass condition).
pub fn format_diff(a_name: &str, b_name: &str, d: &RunDiff) -> String {
    let mut s = String::new();
    s.push_str(&format!("diff {a_name} vs {b_name}\n"));
    for line in &d.deltas {
        s.push_str(&format!("  ! {line}\n"));
    }
    for line in &d.timing_notes {
        s.push_str(&format!("  ~ {line}\n"));
    }
    s.push_str(&format!(
        "{} stable deltas, {} timing notes\n",
        d.deltas.len(),
        d.timing_notes.len()
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::{congestion_flow, FlowOptions};
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn record() -> RunRecord {
        let net = random_pla(&PlaGenConfig {
            inputs: 8,
            outputs: 4,
            terms: 16,
            min_literals: 2,
            max_literals: 4,
            mean_outputs_per_term: 1.3,
            seed: 3,
        })
        .to_network();
        let r = congestion_flow(&net, 0.001, &FlowOptions::default()).unwrap();
        let rows = vec![KSweepEntry { k: 0.001, result: r }];
        RunRecord::from_sweep(
            "t8",
            fnv1a64(b"design-bytes"),
            RunParams {
                scheme: "congestion".into(),
                placer: "kway".into(),
                layers: 3,
                target_utilization: 0.611,
                ks: vec![0.001],
                optimize: false,
            },
            &rows,
        )
    }

    #[test]
    fn fnv_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = record();
        let text = rec.to_json().to_string_pretty();
        assert!(text.contains("\"schema\": \"casyn.run.v1\""));
        let back = RunRecord::from_json(&text).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.content_hash(), rec.content_hash());
    }

    #[test]
    fn content_hash_ignores_timing_but_not_results() {
        let rec = record();
        let h = rec.content_hash();
        let mut noisy = rec.clone();
        for r in &mut noisy.rows {
            for s in &mut r.stages {
                s.wall_ms *= 7.0;
                s.alloc_bytes += 12345;
            }
        }
        assert_eq!(noisy.content_hash(), h, "timing noise must not move the address");
        let mut changed = rec.clone();
        changed.rows[0].overflow += 1.0;
        assert_ne!(changed.content_hash(), h, "a result change must move the address");
        let mut reparam = rec;
        reparam.params.placer = "bisect".into();
        assert_ne!(reparam.content_hash(), h);
    }

    #[test]
    fn append_is_content_addressed_and_idempotent() {
        let rec = record();
        let dir = std::env::temp_dir().join(format!("casyn-ledger-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let p1 = rec.append(&dir).unwrap();
        let p2 = rec.append(&dir).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let loaded = RunRecord::load(&p1).unwrap();
        assert_eq!(loaded, rec);
        assert!(p1.file_name().unwrap().to_string_lossy().contains("t8-"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_records_diff_clean() {
        let rec = record();
        let d = diff_records(&rec, &rec.clone(), &DiffTolerance::default());
        assert!(d.is_clean());
        assert!(d.timing_notes.is_empty());
        let out = format_diff("a", "b", &d);
        assert!(out.contains("0 stable deltas"), "{out}");
    }

    #[test]
    fn stable_mismatch_is_a_delta_timing_noise_is_a_note() {
        let rec = record();
        let mut other = rec.clone();
        other.rows[0].violations += 3;
        other.rows[0].stages[0].wall_ms = rec.rows[0].stages[0].wall_ms * 100.0 + 1000.0;
        let d = diff_records(&rec, &other, &DiffTolerance::default());
        assert!(!d.is_clean());
        assert_eq!(d.deltas.len(), 1, "{:?}", d.deltas);
        assert!(d.deltas[0].contains("violations"));
        assert_eq!(d.timing_notes.len(), 1, "{:?}", d.timing_notes);
        let out = format_diff("a", "b", &d);
        assert!(out.contains("  ! "), "{out}");
        assert!(out.contains("  ~ "), "{out}");
    }

    #[test]
    fn shape_changes_are_deltas() {
        let rec = record();
        let mut other = rec.clone();
        other.rows[0].stages[0].stage = "renamed".into();
        let d = diff_records(&rec, &other, &DiffTolerance::default());
        assert!(!d.is_clean());
        let mut shorter = rec.clone();
        shorter.rows.clear();
        let d = diff_records(&rec, &shorter, &DiffTolerance::default());
        assert!(d.deltas.iter().any(|l| l.starts_with("rows:")), "{:?}", d.deltas);
    }

    #[test]
    fn hpwl_is_positive_for_routed_designs() {
        let rec = record();
        assert!(rec.rows[0].hpwl_um > 0.0);
    }

    #[test]
    fn ledger_error_diagnostics() {
        let e = RunRecord::from_json("{oops").unwrap_err();
        assert!(matches!(e, LedgerError::Syntax { .. }));
        let e = RunRecord::from_json("{\"schema\": \"casyn.run.v2\"}").unwrap_err();
        assert!(matches!(&e, LedgerError::Field { field, .. } if field == "schema"), "{e}");
        let rec = record();
        let text = rec.to_json().to_string_pretty().replace("\"overflow\"", "\"oveflow\"");
        let e = RunRecord::from_json(&text).unwrap_err();
        assert!(e.to_string().contains("overflow"), "{e}");
    }
}
