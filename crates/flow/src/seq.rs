//! Sequential synthesis: map the combinational core, pass flip-flops
//! through, and close timing on register paths.
//!
//! The paper's mapper is combinational; real designs have registers. A
//! [`sequential_flow`] run:
//!
//! 1. exposes each latch's next-state node as a temporary primary output
//!    and its current state as a pseudo primary input;
//! 2. maps/places/routes the core with the congestion-aware flow;
//! 3. replaces each pseudo boundary with a DFF master from the library
//!    (placed at its data driver, then re-legalized);
//! 4. reruns routing and clocked STA — flip-flops launch at clock-to-Q
//!    and terminate incoming paths at their setup, so
//!    [`casyn_timing::StaResult::min_clock_period`] reports the design's
//!    fastest clock.

use crate::error::{FlowError, FlowErrorKind, Stage};
use crate::flows::{fire_fault, full_flow, unsupported_corrupt, FlowOptions, FlowResult};
use casyn_core::{CostKind, MapOptions, PartitionScheme};
use casyn_netlist::mapped::{MappedCell, MappedNetlist, SignalRef};
use casyn_netlist::seq::SeqNetwork;
use casyn_place::instance::assign_mapped_ports;
use casyn_place::legalize_rows;
use casyn_route::route_mapped;
use casyn_timing::analyze_routed;

/// The outcome of a sequential flow.
#[derive(Debug, Clone)]
pub struct SeqFlowResult {
    /// The combinational-core flow result, with flip-flops already
    /// inserted into `netlist` and routing/STA updated.
    pub flow: FlowResult,
    /// Flip-flops inserted.
    pub num_dffs: usize,
    /// Minimum clock period supported by the routed design (ns).
    pub min_clock_period: f64,
}

/// Runs the congestion-aware flow on a sequential design. A library
/// without a sequential master fails with a typed
/// [`FlowErrorKind::MissingSeqMaster`] error naming the library;
/// inconsistent latch wiring is a seq-stage bad-input error.
pub fn sequential_flow(
    seq: &SeqNetwork,
    k: f64,
    opts: &FlowOptions,
) -> Result<SeqFlowResult, FlowError> {
    seq.validate().map_err(|e| {
        FlowError::bad_input(Stage::Seq, format!("inconsistent sequential network: {e}"))
    })?;
    // fail before the (expensive) combinational flow when the library
    // cannot host the flip-flops we will need afterwards
    let dff_id = match opts.lib.dff() {
        Some(id) => id,
        None if seq.is_combinational() => u32::MAX, // never used below
        None => {
            return Err(FlowError::new(
                Stage::Seq,
                FlowErrorKind::MissingSeqMaster,
                format!(
                    "library \"{}\" has no sequential master (DFF) for a design with {} latches",
                    opts.lib.name(),
                    seq.latches.len()
                ),
            ))
        }
    };
    // 1. expose latch boundaries on a copy of the core
    let mut core = seq.core.clone();
    for (i, latch) in seq.latches.iter().enumerate() {
        core.add_output(format!("__latch_d_{i}"), latch.d);
    }
    // 2. combinational flow
    let prep = crate::flows::prepare(&core, opts)?;
    let map_opts = MapOptions {
        scheme: PartitionScheme::PlacementDriven,
        cost: if k == 0.0 { CostKind::Area } else { CostKind::AreaWire { k } },
        ..Default::default()
    };
    let mut r = full_flow(&prep, &map_opts, opts)?;
    let nl = &mut r.netlist;
    // 3. insert flip-flops
    let num_latches = seq.latches.len();
    if num_latches > 0 {
        let dff_master = opts.lib.cell(dff_id).clone();
        let num_real_outputs = nl.outputs().len() - num_latches;
        let q_base = (nl.input_names().len() - num_latches) as u32;
        for (i, _) in seq.latches.iter().enumerate() {
            let (_, d_sig) = nl.outputs()[num_real_outputs + i];
            let pos = nl.signal_pos(d_sig);
            let dff = nl.add_cell(MappedCell {
                lib_cell: dff_id,
                name: dff_master.name.clone(),
                inputs: vec![d_sig],
                area: dff_master.area,
                width: dff_master.width,
                pos,
                source_tree: None,
            });
            // every consumer of the latch's pseudo-input now reads the DFF
            nl.replace_signal(SignalRef::Pi(q_base + i as u32), dff);
        }
        nl.remove_trailing_outputs(num_latches);
        nl.remove_trailing_inputs(num_latches);
    }
    if fire_fault(opts, Stage::Seq)? {
        return Err(unsupported_corrupt(Stage::Seq));
    }
    if opts.validate {
        let nl_ref = &*nl;
        crate::check::mapped_netlist_cut(Stage::Seq, nl_ref, |c| {
            opts.lib.cell(nl_ref.cells()[c].lib_cell).sequential
        })?;
    }
    // 4. re-place (legalize with the DFFs), re-route, clocked STA
    assign_mapped_ports(nl, &prep.floorplan);
    let desired: Vec<casyn_netlist::Point> = nl.cells().iter().map(|c| c.pos).collect();
    let widths: Vec<f64> = nl.cells().iter().map(|c| c.width).collect();
    let legal = legalize_rows(&desired, &widths, &prep.floorplan);
    for (cell, p) in nl.cells_mut().iter_mut().zip(&legal.pos) {
        cell.pos = *p;
    }
    r.route = route_mapped(nl, &prep.floorplan, &opts.route)?;
    r.sta = analyze_routed(nl, &opts.lib, &opts.timing, &r.route.net_wirelength);
    r.cell_area = nl.cell_area();
    r.num_cells = nl.num_cells();
    r.utilization_pct = prep.floorplan.utilization_pct(r.cell_area);
    let min_clock_period = r.sta.min_clock_period();
    Ok(SeqFlowResult { flow: r, num_dffs: num_latches, min_clock_period })
}

/// Cycle-accurate simulation of a mapped sequential netlist: flip-flops
/// (identified through the library) hold state across cycles. Stimulus
/// rows cover the real primary inputs; returns per-cycle primary-output
/// values.
///
/// # Panics
///
/// Panics on stimulus width mismatch or a combinational loop.
pub fn simulate_mapped_seq(
    nl: &MappedNetlist,
    lib: &casyn_library::Library,
    stimulus: &[Vec<bool>],
) -> Vec<Vec<bool>> {
    let is_seq = |c: usize| lib.cell(nl.cells()[c].lib_cell).sequential;
    let order = nl.topological_order_cut(is_seq);
    let mut state = vec![false; nl.num_cells()];
    let mut out = Vec::with_capacity(stimulus.len());
    for row in stimulus {
        assert_eq!(row.len(), nl.input_names().len(), "stimulus width mismatch");
        let mut values = state.clone();
        for &ci in &order {
            if is_seq(ci) {
                continue; // holds last cycle's captured value
            }
            let cell = &nl.cells()[ci];
            let ins: Vec<bool> = cell
                .inputs
                .iter()
                .map(|s| match s {
                    SignalRef::Pi(i) => row[*i as usize],
                    SignalRef::Cell(c) => values[*c as usize],
                })
                .collect();
            values[ci] = lib.eval_cell(cell.lib_cell, &ins);
        }
        out.push(
            nl.outputs()
                .iter()
                .map(|(_, s)| match s {
                    SignalRef::Pi(i) => row[*i as usize],
                    SignalRef::Cell(c) => values[*c as usize],
                })
                .collect(),
        );
        // capture next state at the clock edge
        for &ci in &order {
            if is_seq(ci) {
                let cell = &nl.cells()[ci];
                state[ci] = match cell.inputs[0] {
                    SignalRef::Pi(i) => row[i as usize],
                    SignalRef::Cell(c) => values[c as usize],
                };
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_library::{corelib018, Library};
    use casyn_netlist::blif::Blif;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A 3-bit LFSR-ish sequential benchmark in BLIF.
    fn counter_blif() -> SeqNetwork {
        let text = "\
.model ctr
.inputs en
.outputs b0 b1
.latch n0 s0 0
.latch n1 s1 0
# n0 = s0 XOR en
.names s0 en n0
10 1
01 1
# n1 = s1 XOR (s0 AND en); on-set rows only
.names s1 s0 en n1
011 1
100 1
101 1
110 1
.names s0 b0
1 1
.names s1 b1
1 1
.end
";
        text.parse::<Blif>().unwrap().into_seq()
    }

    #[test]
    fn sequential_flow_builds_and_times() {
        let seq = counter_blif();
        let opts = FlowOptions::default();
        let r = sequential_flow(&seq, 0.1, &opts).unwrap();
        assert_eq!(r.num_dffs, 2);
        assert!(r.min_clock_period > 0.0);
        // the DFF cells are present in the netlist
        let dffs = r.flow.netlist.cells().iter().filter(|c| c.name == "DFF").count();
        assert_eq!(dffs, 2);
        // no leftover pseudo ports
        assert_eq!(r.flow.netlist.input_names(), &["en".to_string()]);
        assert_eq!(r.flow.netlist.outputs().len(), 2);
    }

    #[test]
    fn mapped_sequential_simulation_matches_golden() {
        let seq = counter_blif();
        let opts = FlowOptions::default();
        let r = sequential_flow(&seq, 0.1, &opts).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let stimulus: Vec<Vec<bool>> = (0..32).map(|_| vec![rng.gen()]).collect();
        let golden = seq.simulate(&stimulus);
        let mapped = simulate_mapped_seq(&r.flow.netlist, &opts.lib, &stimulus);
        assert_eq!(golden, mapped, "sequential behaviour must survive synthesis");
    }

    #[test]
    fn counter_counts() {
        // sanity of the fixture itself: with enable high it counts 00,
        // 01, 10, 11, 00 ... (b0 is the low bit)
        let seq = counter_blif();
        let out = seq.simulate(&vec![vec![true]; 5]);
        assert_eq!(
            out,
            vec![
                vec![false, false],
                vec![true, false],
                vec![false, true],
                vec![true, true],
                vec![false, false],
            ]
        );
    }

    #[test]
    fn min_period_grows_with_logic_depth() {
        // a deeper next-state function must not decrease the min period
        let shallow = counter_blif();
        let opts = FlowOptions::default();
        let r1 = sequential_flow(&shallow, 0.0, &opts).unwrap();
        assert!(r1.min_clock_period >= opts.lib.cell(opts.lib.dff().unwrap()).setup);
    }

    #[test]
    fn combinational_only_library_is_a_typed_error() {
        // strip every sequential master out of the standard library
        let mut lib = Library::new("comb-only");
        for c in corelib018().cells().iter().filter(|c| !c.sequential) {
            lib.push(c.clone());
        }
        assert!(lib.dff().is_none(), "fixture must have no DFF");
        let seq = counter_blif();
        let opts = FlowOptions { lib, ..Default::default() };
        let e = sequential_flow(&seq, 0.1, &opts).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Seq, FlowErrorKind::MissingSeqMaster));
        assert!(e.detail.contains("comb-only"), "error names the library: {e}");
        assert!(e.detail.contains("2 latches"));
        // a combinational design sails through without needing a DFF
        let comb = SeqNetwork::combinational(counter_blif().core);
        assert!(sequential_flow(&comb, 0.0, &opts).is_ok());
    }

    #[test]
    fn inconsistent_latch_wiring_is_a_typed_error() {
        let mut seq = counter_blif();
        seq.num_real_inputs = 99; // claim more real inputs than exist
        let e = sequential_flow(&seq, 0.0, &FlowOptions::default()).unwrap_err();
        assert_eq!((e.stage, e.kind), (Stage::Seq, FlowErrorKind::BadInput));
        assert!(e.detail.contains("inconsistent sequential network"));
    }
}
