//! Batch-manifest parsing, shared by `casyn batch` and the `casyn-serve`
//! job API.
//!
//! A manifest is a JSON document, either a top-level array of jobs or
//! `{"jobs": [...]}`. Every field but the design identity is optional
//! and falls back to [`ManifestDefaults`]:
//!
//! ```json
//! {"jobs": [
//!   {"design": "examples/designs/count8.pla", "ks": [0.0, 0.1, 1.0],
//!    "name": "count8", "util": 0.611, "layers": 3, "optimize": false,
//!    "placer": "kway", "deadline_ms": 60000, "fault_plan": "map:panic:1"}
//! ]}
//! ```
//!
//! A job names its design either by path (`design`) or inline
//! (`source`, the design text itself, with `format` `"pla"` or
//! `"blif"`; the serve API uses inline sources so clients need no
//! shared filesystem). `inject_panic: true` is the legacy spelling of
//! `"fault_plan": "decompose:panic:1"`.

use crate::flows::FlowOptions;
use casyn_logic::OptimizeOptions;
use casyn_netlist::blif::Blif;
use casyn_netlist::network::Network;
use casyn_netlist::seq::SeqNetwork;
use casyn_netlist::Pla;
use casyn_obs::json::JsonValue;
use casyn_place::PlacerBackend;
use std::fs;

/// The fallback values a manifest entry inherits when it omits a field.
/// The CLI builds one from its flags; serve uses the server defaults.
#[derive(Debug, Clone)]
pub struct ManifestDefaults {
    /// K values to sweep.
    pub ks: Vec<f64>,
    /// Target K=0 utilization for the derived die.
    pub util: f64,
    /// Metal layers.
    pub layers: usize,
    /// Run technology-independent optimization first.
    pub optimize: bool,
    /// Global placement backend (None = the flow default).
    pub placer: Option<PlacerBackend>,
}

impl Default for ManifestDefaults {
    fn default() -> Self {
        ManifestDefaults {
            ks: vec![0.0, 0.1, 0.5, 1.0, 5.0],
            util: 0.611,
            layers: 3,
            optimize: false,
            placer: None,
        }
    }
}

/// The textual format of a design source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignFormat {
    /// Espresso two-level PLA.
    Pla,
    /// Berkeley BLIF.
    Blif,
}

impl DesignFormat {
    /// From a manifest `format` field value.
    pub fn parse(s: &str) -> Option<DesignFormat> {
        match s {
            "pla" => Some(DesignFormat::Pla),
            "blif" => Some(DesignFormat::Blif),
            _ => None,
        }
    }

    /// From a design path extension (`.blif` is BLIF, everything else
    /// reads as PLA — the historical CLI behavior).
    pub fn from_path(path: &str) -> DesignFormat {
        if path.ends_with(".blif") {
            DesignFormat::Blif
        } else {
            DesignFormat::Pla
        }
    }
}

/// One batch-manifest entry, with defaults already applied.
#[derive(Debug, Clone)]
pub struct ManifestJob {
    /// Display name (defaults to the design file stem).
    pub name: String,
    /// Design path — or, for inline jobs, the display identity.
    pub design: String,
    /// Inline design text; when set, `design` is never read from disk.
    pub source: Option<String>,
    /// Format of `source` (from the `format` field, default PLA). For
    /// path jobs the format follows the file extension instead.
    pub format: DesignFormat,
    /// K values to sweep.
    pub ks: Vec<f64>,
    /// Target utilization.
    pub util: f64,
    /// Metal layers.
    pub layers: usize,
    /// Technology-independent optimization.
    pub optimize: bool,
    /// Per-job deadline in milliseconds.
    pub deadline_ms: Option<f64>,
    /// Legacy spelling of `fault_plan: "decompose:panic:1"`.
    pub inject_panic: bool,
    /// Deterministic fault-injection spec (validated by the caller).
    pub fault_plan: Option<String>,
    /// Placement backend override.
    pub placer: Option<PlacerBackend>,
}

/// The file stem of a path (`a/count8.pla` → `count8`), used as the
/// default job name.
pub fn file_stem(path: &str) -> String {
    std::path::Path::new(path)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_string())
}

/// Parses design text in the given format into a sequential network
/// (combinational designs pass through with no latches).
pub fn parse_design(text: &str, format: DesignFormat, what: &str) -> Result<SeqNetwork, String> {
    match format {
        DesignFormat::Blif => {
            let blif: Blif = text.parse().map_err(|e| format!("{what}: {e}"))?;
            Ok(blif.into_seq())
        }
        DesignFormat::Pla => {
            let pla: Pla = text.parse().map_err(|e| format!("{what}: {e}"))?;
            Ok(SeqNetwork::combinational(pla.to_network()))
        }
    }
}

/// Reads and parses a design file by extension (`.blif` is BLIF,
/// everything else PLA).
pub fn load_design(path: &str) -> Result<SeqNetwork, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse_design(&text, DesignFormat::from_path(path), path)
}

impl ManifestJob {
    /// The design text and its format: the inline `source` when present,
    /// else the `design` path's contents. The returned text is what the
    /// content address hashes.
    pub fn design_text(&self) -> Result<(String, DesignFormat), String> {
        match &self.source {
            Some(text) => Ok((text.clone(), self.format)),
            None => {
                let text = fs::read_to_string(&self.design)
                    .map_err(|e| format!("cannot read {}: {e}", self.design))?;
                Ok((text, DesignFormat::from_path(&self.design)))
            }
        }
    }

    /// Loads the job's combinational network plus the raw design text
    /// (for content addressing). Sequential designs are rejected — the
    /// batch runner and serve sweep combinational flows only.
    pub fn load_network(&self) -> Result<(Network, String), String> {
        let (text, format) = self.design_text()?;
        let seq = parse_design(&text, format, &self.design)?;
        if seq.is_combinational() {
            Ok((seq.core, text))
        } else {
            Err(format!("{}: sequential designs are not supported in batch", self.design))
        }
    }

    /// Serializes the entry as a manifest-object with every field
    /// explicit, so parsing it back through [`parse_manifest_value`]
    /// reproduces the job regardless of the defaults in effect. This is
    /// what the serve write-ahead log persists for admitted jobs: enough
    /// to re-run the job after a crash without the original request.
    pub fn to_json(&self) -> JsonValue {
        let mut doc = vec![
            ("name".into(), JsonValue::Str(self.name.clone())),
            ("design".into(), JsonValue::Str(self.design.clone())),
        ];
        if let Some(src) = &self.source {
            doc.push(("source".into(), JsonValue::Str(src.clone())));
        }
        let format = match self.format {
            DesignFormat::Pla => "pla",
            DesignFormat::Blif => "blif",
        };
        doc.push(("format".into(), JsonValue::Str(format.into())));
        doc.push((
            "ks".into(),
            JsonValue::Array(self.ks.iter().map(|&k| JsonValue::Number(k)).collect()),
        ));
        doc.push(("util".into(), JsonValue::Number(self.util)));
        doc.push(("layers".into(), JsonValue::Number(self.layers as f64)));
        doc.push(("optimize".into(), JsonValue::Bool(self.optimize)));
        if let Some(ms) = self.deadline_ms {
            doc.push(("deadline_ms".into(), JsonValue::Number(ms)));
        }
        if self.inject_panic {
            doc.push(("inject_panic".into(), JsonValue::Bool(true)));
        }
        if let Some(p) = &self.fault_plan {
            doc.push(("fault_plan".into(), JsonValue::Str(p.clone())));
        }
        if let Some(b) = self.placer {
            doc.push(("placer".into(), JsonValue::Str(b.name().into())));
        }
        JsonValue::object(doc)
    }

    /// The flow options this entry asks for (fault plan excluded — the
    /// caller validates and injects it).
    pub fn flow_options(&self, validate: bool) -> FlowOptions {
        let mut opts = FlowOptions { target_utilization: self.util, ..Default::default() };
        opts.route.layers = self.layers;
        if self.optimize {
            opts.optimize = Some(OptimizeOptions::default());
        }
        if validate {
            opts.validate = true;
        }
        if let Some(b) = self.placer {
            opts.placer.backend = b;
        }
        opts
    }
}

/// Parses a batch manifest from text. See [`parse_manifest_value`] for
/// the field rules.
pub fn parse_manifest(text: &str, defaults: &ManifestDefaults) -> Result<Vec<ManifestJob>, String> {
    let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
    parse_manifest_value(&doc, defaults)
}

/// Parses an already-parsed manifest document: a top-level job array or
/// `{"jobs": [...]}`. Missing per-job fields fall back to `defaults`.
/// Serve parses request bodies with explicit [`casyn_obs::json::JsonLimits`]
/// first and hands the document here.
pub fn parse_manifest_value(
    doc: &JsonValue,
    defaults: &ManifestDefaults,
) -> Result<Vec<ManifestJob>, String> {
    let entries = if let JsonValue::Array(items) = doc {
        items.as_slice()
    } else {
        doc.get("jobs")
            .and_then(|j| j.as_array())
            .ok_or("manifest must be a job array or an object with a \"jobs\" array")?
    };
    if entries.is_empty() {
        return Err("manifest has no jobs".into());
    }
    let f64_field = |j: &JsonValue, key: &str, dflt: f64, i: usize| -> Result<f64, String> {
        match j.get(key) {
            None => Ok(dflt),
            Some(v) => v.as_f64().ok_or(format!("job {i}: \"{key}\" must be a number")),
        }
    };
    let bool_field = |j: &JsonValue, key: &str, i: usize| -> Result<bool, String> {
        match j.get(key) {
            None => Ok(false),
            Some(v) => v.as_bool().ok_or(format!("job {i}: \"{key}\" must be a boolean")),
        }
    };
    let str_field = |j: &JsonValue, key: &str, i: usize| -> Result<Option<String>, String> {
        match j.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or(format!("job {i}: \"{key}\" must be a string")),
        }
    };
    entries
        .iter()
        .enumerate()
        .map(|(i, j)| {
            let source = str_field(j, "source", i)?;
            let name_field = str_field(j, "name", i)?;
            let design = match str_field(j, "design", i)? {
                Some(d) => d,
                // inline jobs may omit the path; their identity is the name
                None if source.is_some() => name_field
                    .clone()
                    .ok_or(format!("job {i}: inline \"source\" needs a \"name\" or \"design\""))?,
                None => return Err(format!("job {i}: missing \"design\" path")),
            };
            let format = match str_field(j, "format", i)? {
                Some(f) => DesignFormat::parse(&f)
                    .ok_or(format!("job {i}: unknown format {f:?} (pla | blif)"))?,
                None => DesignFormat::from_path(&design),
            };
            let ks = match j.get("ks") {
                None => defaults.ks.clone(),
                Some(v) => v
                    .as_array()
                    .ok_or(format!("job {i}: \"ks\" must be an array"))?
                    .iter()
                    .map(|k| k.as_f64().ok_or(format!("job {i}: \"ks\" entries must be numbers")))
                    .collect::<Result<_, _>>()?,
            };
            let placer = match j.get("placer") {
                None => defaults.placer,
                Some(v) => {
                    let s = v.as_str().ok_or(format!("job {i}: \"placer\" must be a string"))?;
                    Some(
                        PlacerBackend::parse(s)
                            .ok_or(format!("job {i}: unknown placer {s:?} (kway | bisect)"))?,
                    )
                }
            };
            Ok(ManifestJob {
                name: name_field.unwrap_or_else(|| file_stem(&design)),
                source,
                format,
                ks,
                util: f64_field(j, "util", defaults.util, i)?,
                layers: f64_field(j, "layers", defaults.layers as f64, i)? as usize,
                optimize: bool_field(j, "optimize", i)? || defaults.optimize,
                deadline_ms: j
                    .get("deadline_ms")
                    .map(|v| v.as_f64().ok_or(format!("job {i}: \"deadline_ms\" must be a number")))
                    .transpose()?,
                inject_panic: bool_field(j, "inject_panic", i)?,
                fault_plan: str_field(j, "fault_plan", i)?,
                placer,
                design,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> ManifestDefaults {
        ManifestDefaults::default()
    }

    #[test]
    fn manifest_fields_and_defaults() {
        let jobs = parse_manifest(
            r#"{"jobs": [
                {"design": "a/count8.pla"},
                {"design": "b.pla", "name": "bee", "ks": [0.0, 2.5], "util": 0.5,
                 "layers": 4, "optimize": true, "deadline_ms": 1500, "inject_panic": true,
                 "fault_plan": "route:deadline:1"}
            ]}"#,
            &d(),
        )
        .unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].name, "count8");
        assert_eq!(jobs[0].ks, d().ks);
        assert_eq!(jobs[0].util, d().util);
        assert_eq!(jobs[0].layers, 3);
        assert!(!jobs[0].optimize && jobs[0].deadline_ms.is_none() && !jobs[0].inject_panic);
        assert!(jobs[0].fault_plan.is_none() && jobs[0].source.is_none());
        assert_eq!(jobs[0].format, DesignFormat::Pla);
        assert_eq!(jobs[1].name, "bee");
        assert_eq!(jobs[1].ks, vec![0.0, 2.5]);
        assert_eq!(jobs[1].util, 0.5);
        assert_eq!(jobs[1].layers, 4);
        assert!(jobs[1].optimize && jobs[1].inject_panic);
        assert_eq!(jobs[1].deadline_ms, Some(1500.0));
        assert_eq!(jobs[1].fault_plan.as_deref(), Some("route:deadline:1"));
    }

    #[test]
    fn manifest_accepts_top_level_array() {
        let jobs = parse_manifest(r#"[{"design": "x.pla"}]"#, &d()).unwrap();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].design, "x.pla");
    }

    #[test]
    fn manifest_errors() {
        assert!(parse_manifest("not json", &d()).is_err());
        assert!(parse_manifest(r#"{"jobs": []}"#, &d()).unwrap_err().contains("no jobs"));
        assert!(parse_manifest(r#"{"jobs": [{}]}"#, &d()).unwrap_err().contains("design"));
        assert!(parse_manifest(r#"{"jobs": 3}"#, &d()).is_err());
        assert!(parse_manifest(r#"[{"design": "x.pla", "ks": "0,1"}]"#, &d())
            .unwrap_err()
            .contains("ks"));
        assert!(parse_manifest(r#"[{"design": "x.pla", "deadline_ms": "soon"}]"#, &d())
            .unwrap_err()
            .contains("deadline_ms"));
        assert!(parse_manifest(r#"[{"design": "x.pla", "fault_plan": 3}]"#, &d())
            .unwrap_err()
            .contains("fault_plan"));
        assert!(parse_manifest(r#"[{"design": "x.pla", "format": "vhdl"}]"#, &d())
            .unwrap_err()
            .contains("vhdl"));
    }

    #[test]
    fn inline_source_jobs() {
        let pla = ".i 1\n.o 1\n.p 1\n1 1\n.e\n";
        let text = format!(r#"[{{"name": "tiny", "source": {:?}, "format": "pla"}}]"#, pla);
        let jobs = parse_manifest(&text, &d()).unwrap();
        assert_eq!(jobs[0].name, "tiny");
        assert_eq!(jobs[0].design, "tiny");
        assert_eq!(jobs[0].source.as_deref(), Some(pla));
        let (net, raw) = jobs[0].load_network().unwrap();
        assert_eq!(raw, pla);
        assert!(net.num_nodes() > 0);
        // an inline job with neither name nor design is rejected
        let e = parse_manifest(r#"[{"source": ".i 1"}]"#, &d()).unwrap_err();
        assert!(e.contains("name"), "got: {e}");
    }

    #[test]
    fn to_json_round_trips_through_the_parser() {
        let jobs = parse_manifest(
            r#"[{"design": "x.pla", "ks": [0.0, 2.5], "util": 0.5, "layers": 4,
                 "optimize": true, "deadline_ms": 1500, "fault_plan": "map:panic:1",
                 "placer": "bisect"},
                {"name": "tiny", "source": ".i 1\n.o 1\n.p 1\n1 1\n.e\n", "format": "pla"}]"#,
            &d(),
        )
        .unwrap();
        // parse back under *different* defaults: every field must survive
        // (a placer of None means "flow default" and has no explicit
        // spelling, so the replay side must keep the default placer None)
        let hostile =
            ManifestDefaults { ks: vec![9.9], util: 0.1, layers: 9, optimize: false, placer: None };
        for job in &jobs {
            let doc = JsonValue::Array(vec![job.to_json()]);
            let back = parse_manifest_value(&doc, &hostile).unwrap();
            assert_eq!(format!("{job:?}"), format!("{:?}", back[0]));
        }
    }

    #[test]
    fn flow_options_reflect_entry() {
        let jobs = parse_manifest(
            r#"[{"design": "x.pla", "util": 0.5, "layers": 4, "optimize": true,
                 "placer": "bisect"}]"#,
            &d(),
        )
        .unwrap();
        let opts = jobs[0].flow_options(true);
        assert_eq!(opts.target_utilization, 0.5);
        assert_eq!(opts.route.layers, 4);
        assert!(opts.optimize.is_some());
        assert!(opts.validate);
        assert_eq!(opts.placer.backend, PlacerBackend::Bisect);
    }
}
