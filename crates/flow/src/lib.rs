//! End-to-end congestion-aware synthesis flows.
//!
//! This crate wires the whole stack into the experiments of the paper:
//! technology-independent optimization → NAND2/INV decomposition → initial
//! placement of the unbound netlist → (congestion-aware) technology
//! mapping → seeded legalization → global routing → static timing
//! analysis.
//!
//! * [`flows`] — the three synthesis flows compared in the paper
//!   (`sis_flow`, `dagon_flow`, `congestion_flow`) and the shared
//!   [`flows::Prepared`] front end.
//! * [`sweep`] — the K sweep behind Tables 2 and 4, serial or fanned
//!   out across a `casyn-exec` pool with bit-identical results.
//! * [`batch`] — concurrent multi-design batch runner with per-job
//!   panic/cancellation/deadline isolation, retry and K-escalation
//!   degradation.
//! * [`error`] — the typed [`error::FlowError`] spine every entry point
//!   reports failures through.
//! * [`check`] — stage-boundary invariant checks (DAG shape, placement
//!   bounds, partition cover, netlist consistency, route completeness).
//! * [`methodology`] — the modified ASIC design flow of Fig. 3 (increase
//!   K until the congestion map is acceptable).
//! * [`seq`] — sequential designs: flip-flop pass-through around the
//!   combinational flow, with clocked STA.
//! * [`content_key`] — the shared stable-field FNV-1a canonicalizer
//!   behind ledger addresses and the serve artifact cache (timings
//!   never enter a key).
//! * [`durable`] — crash-safe file I/O: atomic write-then-fsync-then-
//!   rename, FNV-1a-checksummed payloads and the append-only
//!   `casyn.wal.v1` journal behind the serve state directory.
//! * [`ledger`] — content-addressed `casyn.run.v1` run records and the
//!   cross-run diff behind `casyn diff`.
//! * [`manifest`] — batch-manifest parsing shared by `casyn batch` and
//!   the serve job API (inline design sources included).
//! * [`report`] — table formatting that mirrors the paper's layout.
//! * [`telemetry`] — per-stage wall-clock and metric attribution
//!   collected through `casyn-obs`, exportable as JSON.

pub mod batch;
pub mod check;
pub mod content_key;
pub mod durable;
pub mod error;
pub mod flows;
pub mod ledger;
pub mod manifest;
pub mod methodology;
pub mod report;
pub mod seq;
pub mod sweep;
pub mod telemetry;

pub use batch::{
    run_batch, run_batch_job, run_batch_observed, run_batch_opts, run_batch_with, BatchJob,
    BatchJobReport, BatchOptions, BatchReport, JobSuccess,
};
pub use content_key::{fnv1a64, library_fingerprint, KeyBuilder};
pub use durable::{
    read_checksummed, write_atomic, write_atomic_faulted, write_checksummed, DurableError, Wal,
    WalReplay, WAL_SCHEMA,
};
pub use error::{FlowError, FlowErrorKind, Stage};
pub use flows::{
    congestion_flow, congestion_flow_prepared, dagon_flow, full_flow, prepare, prepare_pool,
    sis_flow, FlowOptions, FlowResult, Prepared,
};
pub use ledger::{
    diff_records, format_diff, DiffTolerance, LedgerError, RunDiff, RunParams, RunRecord, RunRow,
    StageRow,
};
pub use manifest::{
    file_stem, load_design, parse_design, parse_manifest, parse_manifest_value, DesignFormat,
    ManifestDefaults, ManifestJob,
};
pub use methodology::{
    run_methodology, run_methodology_prepared, MethodologyResult, MethodologyStep,
};
pub use report::{
    format_audit_table, format_congestion_heatmap, format_convergence_sparkline,
    format_k_sweep_table, format_routing_table, format_sparkline, format_sta_table,
    format_telemetry_table, k_row_json,
};
pub use seq::{sequential_flow, simulate_mapped_seq, SeqFlowResult};
pub use sweep::{
    find_min_routable_k, find_min_routable_k_pool, k_sweep, k_sweep_prepared,
    k_sweep_prepared_pool, ladder_rungs, KSweepEntry, PAPER_K_VALUES,
};
pub use telemetry::{FlowTelemetry, StageTelemetry};
