//! The K sweep behind the paper's Tables 2 and 4.

use crate::error::{FlowError, Stage};
use crate::flows::{congestion_flow_prepared, prepare, FlowOptions, FlowResult, Prepared};
use casyn_exec::{JobOptions, Pool};
use casyn_netlist::network::Network;

/// The K values the paper sweeps in Tables 2 and 4.
pub const PAPER_K_VALUES: [f64; 14] = [
    0.0, 0.0001, 0.00025, 0.0005, 0.00075, 0.001, 0.0025, 0.005, 0.0075, 0.01, 0.05, 0.1, 0.5, 1.0,
];

/// One row of a K-sweep table.
#[derive(Debug, Clone)]
pub struct KSweepEntry {
    /// The congestion minimization factor.
    pub k: f64,
    /// The flow outcome at this K.
    pub result: FlowResult,
}

impl KSweepEntry {
    /// Per-stage telemetry of the flow run behind this row.
    pub fn telemetry(&self) -> &crate::telemetry::FlowTelemetry {
        &self.result.telemetry
    }
}

/// Runs the congestion-aware flow at every K over one shared technology-
/// independent netlist and placement (generated once, as the paper's
/// methodology prescribes).
pub fn k_sweep(
    network: &Network,
    ks: &[f64],
    opts: &FlowOptions,
) -> Result<Vec<KSweepEntry>, FlowError> {
    let prep = prepare(network, opts)?;
    k_sweep_prepared(&prep, ks, opts)
}

/// [`k_sweep`] over an existing [`Prepared`] design. Stops at the first
/// failing K; the error carries the stage that failed.
pub fn k_sweep_prepared(
    prep: &Prepared,
    ks: &[f64],
    opts: &FlowOptions,
) -> Result<Vec<KSweepEntry>, FlowError> {
    ks.iter()
        .map(|&k| Ok(KSweepEntry { k, result: congestion_flow_prepared(prep, k, opts)? }))
        .collect()
}

/// [`k_sweep_prepared`] fanned out across a [`Pool`]. Every per-K flow
/// run is an independent pure function of the shared immutable
/// [`Prepared`], so the rows are **bit-identical** to the serial path —
/// only wall-clock telemetry differs. Rows come back in input K order;
/// a failing or panicking probe surfaces as the typed error of the
/// lowest failing K (matching the serial path), with sibling probes
/// unaffected.
pub fn k_sweep_prepared_pool(
    prep: &Prepared,
    ks: &[f64],
    opts: &FlowOptions,
    pool: &Pool,
) -> Result<Vec<KSweepEntry>, FlowError> {
    let results =
        pool.try_par_map(ks, &JobOptions::default(), |&k| congestion_flow_prepared(prep, k, opts));
    ks.iter()
        .zip(results)
        .map(|(&k, r)| match r {
            Ok(Ok(result)) => Ok(KSweepEntry { k, result }),
            Ok(Err(e)) => Err(e),
            Err(job) => Err(FlowError::from(job)),
        })
        .collect()
}

/// The geometric probe ladder of [`find_min_routable_k`]: `k_min`,
/// doubling rungs strictly below `k_max`, and then `k_max` itself as the
/// final rung. Clamping the last rung matters: a pure `k *= 2` ladder
/// from e.g. `k_min = 0.01` tops out at 10.24 against `k_max = 16.0` and
/// would report "unroutable" without ever probing 16.0.
pub fn ladder_rungs(k_min: f64, k_max: f64) -> Result<Vec<f64>, FlowError> {
    if !(k_min > 0.0 && k_max > k_min) {
        return Err(FlowError::bad_input(
            Stage::Sweep,
            format!("ladder needs 0 < k_min < k_max, got k_min={k_min}, k_max={k_max}"),
        ));
    }
    let mut rungs = Vec::new();
    let mut k = k_min;
    while k < k_max {
        rungs.push(k);
        k *= 2.0;
    }
    rungs.push(k_max);
    Ok(rungs)
}

/// Searches for the smallest K whose mapping routes without violations —
/// the designer loop of the paper's Section 5 ("by increasing K,
/// efficiently generate solutions which are potentially less congested"),
/// automated. Probes the geometric [`ladder_rungs`] from `k_min` to
/// `k_max` (inclusive), then bisects between the last failing and first
/// passing rungs. Returns `Ok(None)` when even `k_max` does not route.
pub fn find_min_routable_k(
    prep: &Prepared,
    opts: &FlowOptions,
    k_min: f64,
    k_max: f64,
) -> Result<Option<KSweepEntry>, FlowError> {
    find_min_routable_k_pool(prep, opts, k_min, k_max, &Pool::serial())
}

/// [`find_min_routable_k`] with the *ladder* probes fanned out across a
/// [`Pool`]. The serial path stops at the first passing rung; the
/// parallel path probes every rung concurrently and picks the first
/// passing one, so both select the same rung and return bit-identical
/// results (each probe is a pure function of the shared [`Prepared`]).
/// Only the ladder parallelizes: the follow-up [`refine_k_boundary`]
/// phase is serial by design, because each of its probes depends on the
/// previous probe's routability verdict — see its docs for why (and note
/// it is a bisection of the *K interval*, unrelated to the placement
/// layer's bisection backend).
pub fn find_min_routable_k_pool(
    prep: &Prepared,
    opts: &FlowOptions,
    k_min: f64,
    k_max: f64,
    pool: &Pool,
) -> Result<Option<KSweepEntry>, FlowError> {
    find_min_routable_k_traced(prep, opts, k_min, k_max, pool, &mut ProbeTrace::default())
}

/// The Ks one [`find_min_routable_k`] search actually probed: the
/// selected ladder rung and every boundary-refinement probe in order.
/// Used to assert that worker count never changes the search trajectory.
#[derive(Debug, Clone, Default, PartialEq)]
struct ProbeTrace {
    /// The first passing ladder rung (`None` when nothing routed).
    rung: Option<f64>,
    /// The refinement probes, in the order they ran.
    refine_probes: Vec<f64>,
}

/// [`find_min_routable_k_pool`] recording the probed Ks into `trace`.
fn find_min_routable_k_traced(
    prep: &Prepared,
    opts: &FlowOptions,
    k_min: f64,
    k_max: f64,
    pool: &Pool,
    trace: &mut ProbeTrace,
) -> Result<Option<KSweepEntry>, FlowError> {
    let rungs = ladder_rungs(k_min, k_max)?;
    let mut first_pass: Option<(usize, FlowResult)> = None;
    if pool.workers() == 1 {
        // serial: probe in order, stop at the first routable rung
        for (i, &k) in rungs.iter().enumerate() {
            let r = congestion_flow_prepared(prep, k, opts)?;
            if r.route.violations == 0 {
                first_pass = Some((i, r));
                break;
            }
        }
    } else {
        let probes = pool.try_par_map(&rungs, &JobOptions::default(), |&k| {
            congestion_flow_prepared(prep, k, opts)
        });
        // walk in rung order so a failure before the first passing rung
        // surfaces exactly as it would serially
        for (i, probe) in probes.into_iter().enumerate() {
            let r = match probe {
                Ok(inner) => inner?,
                Err(job) => return Err(FlowError::from(job)),
            };
            if r.route.violations == 0 {
                first_pass = Some((i, r));
                break;
            }
        }
    }
    let Some((pass_idx, hi_r)) = first_pass else { return Ok(None) };
    trace.rung = Some(rungs[pass_idx]);
    let lo = if pass_idx == 0 { 0.0 } else { rungs[pass_idx - 1] };
    let entry = refine_k_boundary(prep, opts, lo, rungs[pass_idx], hi_r, &mut trace.refine_probes)?;
    Ok(Some(entry))
}

/// Tightens the routability boundary between the last failing K (`lo`)
/// and the first passing rung (`hi_k`) with four log-scale midpoint
/// probes. This phase is serial *by design*, not by omission: each
/// probe's K is chosen from the previous probe's routability verdict, so
/// there is no independent work to hand a pool — unlike the ladder,
/// whose rungs are fixed up front. Every probed K is appended to
/// `probed`, which lets tests pin down that the trajectory is identical
/// for any worker count.
fn refine_k_boundary(
    prep: &Prepared,
    opts: &FlowOptions,
    mut lo: f64,
    mut hi_k: f64,
    mut hi_r: FlowResult,
    probed: &mut Vec<f64>,
) -> Result<KSweepEntry, FlowError> {
    for _ in 0..4 {
        let mid = if lo == 0.0 { hi_k / 2.0 } else { (lo * hi_k).sqrt() };
        if mid <= 0.0 || mid >= hi_k {
            break;
        }
        probed.push(mid);
        let r = congestion_flow_prepared(prep, mid, opts)?;
        if r.route.violations == 0 {
            hi_k = mid;
            hi_r = r;
        } else {
            lo = mid;
        }
    }
    Ok(KSweepEntry { k: hi_k, result: hi_r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn small_net() -> Network {
        random_pla(&PlaGenConfig {
            inputs: 10,
            outputs: 6,
            terms: 36,
            min_literals: 3,
            max_literals: 6,
            mean_outputs_per_term: 1.5,
            seed: 5,
        })
        .to_network()
    }

    #[test]
    fn sweep_produces_one_entry_per_k() {
        let net = small_net();
        let opts = FlowOptions::default();
        let ks = [0.0, 0.01, 1.0];
        let rows = k_sweep(&net, &ks, &opts).unwrap();
        assert_eq!(rows.len(), 3);
        for (row, k) in rows.iter().zip(ks) {
            assert_eq!(row.k, k);
        }
    }

    #[test]
    fn area_is_monotone_nondecreasing_at_table_scale_ks() {
        // the paper's Table 2: cell area rises with K (after the flat
        // region); on a small design we assert the ends of the range
        let net = small_net();
        let opts = FlowOptions::default();
        let rows = k_sweep(&net, &[0.0, 10.0], &opts).unwrap();
        assert!(rows[1].result.cell_area >= rows[0].result.cell_area);
    }

    #[test]
    fn min_routable_k_finds_a_routable_point() {
        let net = small_net();
        // generous die: everything routes, so the search returns k_min
        let opts = FlowOptions { target_utilization: 0.35, ..Default::default() };
        let prep = crate::flows::prepare(&net, &opts).unwrap();
        let found = find_min_routable_k(&prep, &opts, 0.01, 16.0)
            .unwrap()
            .expect("a routable K must exist on a loose die");
        assert_eq!(found.result.route.violations, 0);
        assert!(found.k <= 0.01 * 1.0001);
    }

    #[test]
    fn ladder_clamps_final_rung_to_k_max() {
        // regression: the pure-doubling ladder from 0.01 tops out at
        // 10.24 and never probed k_max = 16.0, reporting "unroutable"
        // even when 16.0 routes
        let rungs = ladder_rungs(0.01, 16.0).unwrap();
        assert_eq!(*rungs.last().unwrap(), 16.0, "k_max itself must be probed");
        assert!((rungs[rungs.len() - 2] - 10.24).abs() < 1e-12);
        for w in rungs.windows(2) {
            assert!(w[0] < w[1], "rungs must be strictly increasing");
        }
        // exact power-of-two span: no duplicate final rung
        assert_eq!(ladder_rungs(1.0, 16.0).unwrap(), vec![1.0, 2.0, 4.0, 8.0, 16.0]);
        // k_max below the first doubling still yields both endpoints
        assert_eq!(ladder_rungs(1.0, 1.5).unwrap(), vec![1.0, 1.5]);
    }

    #[test]
    fn bad_ladder_bounds_are_typed_errors() {
        let e = ladder_rungs(0.0, 1.0).unwrap_err();
        assert_eq!(e.stage, Stage::Sweep);
        assert!(e.detail.contains("k_min"));
        assert!(ladder_rungs(2.0, 1.0).is_err());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let net = small_net();
        let opts = FlowOptions::default();
        let prep = crate::flows::prepare(&net, &opts).unwrap();
        let ks = [0.0, 0.001, 0.05, 1.0];
        let serial = k_sweep_prepared(&prep, &ks, &opts).unwrap();
        let parallel = k_sweep_prepared_pool(&prep, &ks, &opts, &casyn_exec::Pool::new(4)).unwrap();
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.k, b.k);
            assert_eq!(a.result.cell_area, b.result.cell_area);
            assert_eq!(a.result.num_cells, b.result.num_cells);
            assert_eq!(a.result.route.violations, b.result.route.violations);
            assert_eq!(a.result.route.total_wirelength, b.result.route.total_wirelength);
            assert_eq!(a.result.sta.critical_arrival(), b.result.sta.critical_arrival());
        }
    }

    #[test]
    fn parallel_min_routable_k_matches_serial() {
        let net = small_net();
        let opts = FlowOptions { target_utilization: 0.35, ..Default::default() };
        let prep = crate::flows::prepare(&net, &opts).unwrap();
        let serial = find_min_routable_k(&prep, &opts, 0.01, 16.0).unwrap().unwrap();
        let parallel =
            find_min_routable_k_pool(&prep, &opts, 0.01, 16.0, &casyn_exec::Pool::new(4))
                .unwrap()
                .unwrap();
        assert_eq!(serial.k, parallel.k);
        assert_eq!(serial.result.cell_area, parallel.result.cell_area);
        assert_eq!(serial.result.route.violations, parallel.result.route.violations);
    }

    #[test]
    fn ladder_and_refine_probe_the_same_ks_for_any_worker_count() {
        // regression for the docs/code drift around "the bisection
        // refinement stays serial": the pool parallelizes only the
        // ladder, so the selected rung AND the serial refinement's probe
        // trajectory must be identical under 1 and 4 workers
        let net = small_net();
        let opts = FlowOptions { target_utilization: 0.35, ..Default::default() };
        let prep = crate::flows::prepare(&net, &opts).unwrap();
        let mut t1 = ProbeTrace::default();
        let mut t4 = ProbeTrace::default();
        let one = find_min_routable_k_traced(&prep, &opts, 0.01, 16.0, &Pool::new(1), &mut t1)
            .unwrap()
            .expect("routable on a loose die");
        let four = find_min_routable_k_traced(&prep, &opts, 0.01, 16.0, &Pool::new(4), &mut t4)
            .unwrap()
            .expect("routable on a loose die");
        assert_eq!(t1.rung, t4.rung, "both worker counts must select the same ladder rung");
        assert_eq!(t1.refine_probes, t4.refine_probes, "refinement must probe the same Ks");
        assert!(!t1.refine_probes.is_empty(), "the boundary refinement must actually probe");
        assert_eq!(one.k, four.k);
        assert_eq!(one.result.route.violations, four.result.route.violations);
    }

    #[test]
    fn parallel_sweep_surfaces_injected_panics_as_typed_errors() {
        use crate::error::FlowErrorKind;
        let net = small_net();
        let opts = FlowOptions {
            fault: Some(casyn_exec::FaultPlan::parse("map:panic:2").unwrap()),
            ..Default::default()
        };
        let prep = crate::flows::prepare(&net, &opts).unwrap();
        let e = k_sweep_prepared_pool(&prep, &[0.0, 0.001], &opts, &casyn_exec::Pool::new(2))
            .unwrap_err();
        assert_eq!(e.kind, FlowErrorKind::Panicked);
        assert!(e.detail.contains("injected fault"), "panic payload kept: {e}");
    }

    #[test]
    fn paper_k_values_are_sorted_and_start_at_zero() {
        assert_eq!(PAPER_K_VALUES[0], 0.0);
        for w in PAPER_K_VALUES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
