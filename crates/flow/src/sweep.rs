//! The K sweep behind the paper's Tables 2 and 4.

use crate::flows::{congestion_flow_prepared, prepare, FlowOptions, FlowResult, Prepared};
use casyn_netlist::network::Network;

/// The K values the paper sweeps in Tables 2 and 4.
pub const PAPER_K_VALUES: [f64; 14] = [
    0.0, 0.0001, 0.00025, 0.0005, 0.00075, 0.001, 0.0025, 0.005, 0.0075, 0.01, 0.05, 0.1, 0.5, 1.0,
];

/// One row of a K-sweep table.
#[derive(Debug, Clone)]
pub struct KSweepEntry {
    /// The congestion minimization factor.
    pub k: f64,
    /// The flow outcome at this K.
    pub result: FlowResult,
}

impl KSweepEntry {
    /// Per-stage telemetry of the flow run behind this row.
    pub fn telemetry(&self) -> &crate::telemetry::FlowTelemetry {
        &self.result.telemetry
    }
}

/// Runs the congestion-aware flow at every K over one shared technology-
/// independent netlist and placement (generated once, as the paper's
/// methodology prescribes).
pub fn k_sweep(network: &Network, ks: &[f64], opts: &FlowOptions) -> Vec<KSweepEntry> {
    let prep = prepare(network, opts);
    k_sweep_prepared(&prep, ks, opts)
}

/// [`k_sweep`] over an existing [`Prepared`] design.
pub fn k_sweep_prepared(prep: &Prepared, ks: &[f64], opts: &FlowOptions) -> Vec<KSweepEntry> {
    ks.iter().map(|&k| KSweepEntry { k, result: congestion_flow_prepared(prep, k, opts) }).collect()
}

/// Searches for the smallest K whose mapping routes without violations —
/// the designer loop of the paper's Section 5 ("by increasing K,
/// efficiently generate solutions which are potentially less congested"),
/// automated. Probes a geometric ladder from `k_min` to `k_max`, then
/// bisects between the last failing and first passing rungs. Returns the
/// winning entry, or `None` when even `k_max` does not route.
pub fn find_min_routable_k(
    prep: &Prepared,
    opts: &FlowOptions,
    k_min: f64,
    k_max: f64,
) -> Option<KSweepEntry> {
    assert!(k_min > 0.0 && k_max > k_min, "need 0 < k_min < k_max");
    // geometric ladder
    let mut lo = 0.0f64; // last known failing K (0 = untested baseline)
    let mut best: Option<(f64, crate::flows::FlowResult)> = None;
    let mut k = k_min;
    while k <= k_max * 1.0001 {
        let r = congestion_flow_prepared(prep, k, opts);
        if r.route.violations == 0 {
            best = Some((k, r));
            break;
        }
        lo = k;
        k *= 2.0;
    }
    let (mut hi_k, mut hi_r) = best?;
    // bisect (on a log-ish scale) to tighten the boundary
    for _ in 0..4 {
        let mid = if lo == 0.0 { hi_k / 2.0 } else { (lo * hi_k).sqrt() };
        if mid <= 0.0 || mid >= hi_k {
            break;
        }
        let r = congestion_flow_prepared(prep, mid, opts);
        if r.route.violations == 0 {
            hi_k = mid;
            hi_r = r;
        } else {
            lo = mid;
        }
    }
    Some(KSweepEntry { k: hi_k, result: hi_r })
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_netlist::bench::{random_pla, PlaGenConfig};

    fn small_net() -> Network {
        random_pla(&PlaGenConfig {
            inputs: 10,
            outputs: 6,
            terms: 36,
            min_literals: 3,
            max_literals: 6,
            mean_outputs_per_term: 1.5,
            seed: 5,
        })
        .to_network()
    }

    #[test]
    fn sweep_produces_one_entry_per_k() {
        let net = small_net();
        let opts = FlowOptions::default();
        let ks = [0.0, 0.01, 1.0];
        let rows = k_sweep(&net, &ks, &opts);
        assert_eq!(rows.len(), 3);
        for (row, k) in rows.iter().zip(ks) {
            assert_eq!(row.k, k);
        }
    }

    #[test]
    fn area_is_monotone_nondecreasing_at_table_scale_ks() {
        // the paper's Table 2: cell area rises with K (after the flat
        // region); on a small design we assert the ends of the range
        let net = small_net();
        let opts = FlowOptions::default();
        let rows = k_sweep(&net, &[0.0, 10.0], &opts);
        assert!(rows[1].result.cell_area >= rows[0].result.cell_area);
    }

    #[test]
    fn min_routable_k_finds_a_routable_point() {
        let net = small_net();
        // generous die: everything routes, so the search returns k_min
        let opts = FlowOptions { target_utilization: 0.35, ..Default::default() };
        let prep = crate::flows::prepare(&net, &opts);
        let found = find_min_routable_k(&prep, &opts, 0.01, 16.0)
            .expect("a routable K must exist on a loose die");
        assert_eq!(found.result.route.violations, 0);
        assert!(found.k <= 0.01 * 1.0001);
    }

    #[test]
    fn paper_k_values_are_sorted_and_start_at_zero() {
        assert_eq!(PAPER_K_VALUES[0], 0.0);
        for w in PAPER_K_VALUES.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
