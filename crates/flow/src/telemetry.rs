//! Per-stage flow telemetry: wall-clock timings and metric deltas
//! attributed to each pipeline stage, exportable as JSON.
//!
//! [`FlowTelemetry`] is collected by [`crate::flows::prepare`] and
//! [`crate::flows::full_flow`] using [`StageScope`]: a snapshot of the
//! global [`casyn_obs`] registry is taken when a stage starts, and the
//! delta when it finishes becomes that stage's metric attribution. Wall
//! clock is always measured; metric deltas appear only when collection
//! is enabled ([`casyn_obs::set_enabled`] or the CLI's `--metrics-out`).

use casyn_obs as obs;
use casyn_obs::json::JsonValue;
use casyn_obs::MetricValue;
use std::collections::BTreeMap;

/// Telemetry for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTelemetry {
    /// Stage name (`optimize`, `decompose`, `place`, `map`, `legalize`,
    /// `route`, `sta`, ...).
    pub stage: String,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub wall_ms: f64,
    /// Metrics the stage moved, as representative numbers (counter
    /// deltas, final gauge values, histogram means). Empty when metric
    /// collection was disabled during the run.
    pub metrics: BTreeMap<String, f64>,
}

/// Telemetry for one whole flow run (front end + per-K back end).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTelemetry {
    /// Per-stage records, in execution order.
    pub stages: Vec<StageTelemetry>,
    /// Total wall-clock over all recorded stages, in milliseconds.
    pub total_ms: f64,
    /// Peak number of live design nodes observed across stages (subject
    /// vertices before mapping, mapped cells after) — a memory-pressure
    /// proxy.
    pub peak_live_nodes: usize,
}

impl FlowTelemetry {
    /// The record for `stage`, if that stage ran.
    pub fn stage(&self, stage: &str) -> Option<&StageTelemetry> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The stage names in execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.stage.as_str()).collect()
    }

    /// Raises the live-node high-water mark.
    pub fn observe_live_nodes(&mut self, n: usize) {
        self.peak_live_nodes = self.peak_live_nodes.max(n);
    }

    /// Serializes to a JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "casyn.telemetry.v1",
    ///   "total_ms": 12.5,
    ///   "peak_live_nodes": 240,
    ///   "stages": [
    ///     {"stage": "map", "wall_ms": 3.1, "metrics": {"map.matches_tried": 991}}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.telemetry.v1".into())),
            ("total_ms".into(), JsonValue::Number(self.total_ms)),
            ("peak_live_nodes".into(), JsonValue::Number(self.peak_live_nodes as f64)),
            (
                "stages".into(),
                JsonValue::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            JsonValue::object(vec![
                                ("stage".into(), JsonValue::Str(s.stage.clone())),
                                ("wall_ms".into(), JsonValue::Number(s.wall_ms)),
                                ("metrics".into(), JsonValue::from_map(&s.metrics)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One metric as JSON: counters and gauges become numbers, histograms an
/// object with their summary statistics.
pub fn metric_json(v: &MetricValue) -> JsonValue {
    match v {
        MetricValue::Counter(n) => JsonValue::Number(*n as f64),
        MetricValue::Gauge(g) => JsonValue::Number(*g),
        MetricValue::Histogram(h) => JsonValue::object(vec![
            ("count".into(), JsonValue::Number(h.count as f64)),
            ("mean".into(), JsonValue::Number(h.mean())),
            ("min".into(), JsonValue::Number(h.min)),
            ("max".into(), JsonValue::Number(h.max)),
        ]),
    }
}

/// A registry snapshot as one JSON object keyed `stage.metric`.
pub fn snapshot_json(snap: &obs::Snapshot) -> JsonValue {
    JsonValue::Object(snap.metrics.iter().map(|(k, v)| (k.clone(), metric_json(v))).collect())
}

/// Scoped per-stage collector: remembers the registry state at stage
/// entry and, on [`StageScope::end`], appends a [`StageTelemetry`] with
/// the wall clock and the metric delta.
#[derive(Debug)]
pub(crate) struct StageScope {
    timer: obs::StageTimer,
    before: obs::Snapshot,
}

impl StageScope {
    pub(crate) fn begin(stage: &'static str) -> Self {
        let before = if obs::enabled() { obs::snapshot() } else { obs::Snapshot::default() };
        StageScope { timer: obs::StageTimer::start(stage), before }
    }

    pub(crate) fn end(self, telemetry: &mut FlowTelemetry) {
        let stage = self.timer.stage().to_string();
        let wall_ms = self.timer.finish();
        let metrics = if obs::enabled() {
            obs::delta(&self.before).metrics.into_iter().map(|(k, v)| (k, v.as_f64())).collect()
        } else {
            BTreeMap::new()
        };
        telemetry.total_ms += wall_ms;
        telemetry.stages.push(StageTelemetry { stage, wall_ms, metrics });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlowTelemetry {
        FlowTelemetry {
            stages: vec![
                StageTelemetry {
                    stage: "map".into(),
                    wall_ms: 3.25,
                    metrics: [("map.matches_tried".to_string(), 42.0)].into_iter().collect(),
                },
                StageTelemetry { stage: "route".into(), wall_ms: 1.5, metrics: BTreeMap::new() },
            ],
            total_ms: 4.75,
            peak_live_nodes: 99,
        }
    }

    #[test]
    fn stage_lookup_and_names() {
        let t = sample();
        assert_eq!(t.stage_names(), ["map", "route"]);
        assert_eq!(t.stage("map").unwrap().wall_ms, 3.25);
        assert!(t.stage("sta").is_none());
    }

    #[test]
    fn json_contains_schema_and_stages() {
        let s = sample().to_json().to_string_pretty();
        assert!(s.contains("\"schema\": \"casyn.telemetry.v1\""));
        assert!(s.contains("\"stage\": \"map\""));
        assert!(s.contains("\"map.matches_tried\": 42"));
        assert!(s.contains("\"peak_live_nodes\": 99"));
    }

    #[test]
    fn metric_json_expands_histograms() {
        let reg = obs::Registry::new();
        reg.hist_record("t.sizes", 2.0);
        reg.hist_record("t.sizes", 6.0);
        reg.counter_add("t.hits", 3);
        let snap = reg.snapshot();
        let s = snapshot_json(&snap).to_string_pretty();
        assert!(s.contains("\"t.hits\": 3"));
        assert!(s.contains("\"count\": 2"));
        assert!(s.contains("\"mean\": 4"));
    }

    #[test]
    fn observe_live_nodes_keeps_max() {
        let mut t = FlowTelemetry::default();
        t.observe_live_nodes(10);
        t.observe_live_nodes(4);
        assert_eq!(t.peak_live_nodes, 10);
    }
}
