//! Per-stage flow telemetry: wall-clock timings and metric deltas
//! attributed to each pipeline stage, exportable as JSON.
//!
//! [`FlowTelemetry`] is collected by [`crate::flows::prepare`] and
//! [`crate::flows::full_flow`] using [`StageScope`]: a snapshot of the
//! global [`casyn_obs`] registry is taken when a stage starts, and the
//! delta when it finishes becomes that stage's metric attribution. Wall
//! clock is always measured; metric deltas appear only when collection
//! is enabled ([`casyn_obs::set_enabled`] or the CLI's `--metrics-out`).

use casyn_obs as obs;
use casyn_obs::json::JsonValue;
use casyn_obs::MetricValue;
use std::collections::BTreeMap;

/// Telemetry for one pipeline stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageTelemetry {
    /// Stage name (`optimize`, `decompose`, `place`, `map`, `legalize`,
    /// `route`, `sta`, ...).
    pub stage: String,
    /// Wall-clock time spent in the stage, in milliseconds.
    pub wall_ms: f64,
    /// Metrics the stage moved, as representative numbers (counter
    /// deltas, final gauge values, histogram means — histograms also
    /// expand to `<key>.p50/.p95/.p99` estimates). Empty when metric
    /// collection was disabled during the run.
    pub metrics: BTreeMap<String, f64>,
    /// Heap bytes allocated while the stage ran (0 when metric
    /// collection was disabled or `alloc-track` is off). Process-global:
    /// under `--jobs N` the window includes sibling jobs.
    pub alloc_bytes: u64,
    /// High-water mark of live heap bytes during the stage (same
    /// caveats as `alloc_bytes`).
    pub peak_bytes: u64,
}

/// Telemetry for one whole flow run (front end + per-K back end).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FlowTelemetry {
    /// Per-stage records, in execution order.
    pub stages: Vec<StageTelemetry>,
    /// Total wall-clock over all recorded stages, in milliseconds.
    pub total_ms: f64,
    /// Peak number of live design nodes observed across stages (subject
    /// vertices before mapping, mapped cells after) — a memory-pressure
    /// proxy.
    pub peak_live_nodes: usize,
    /// Largest per-stage live-heap high-water mark, in bytes (0 when
    /// metric collection was disabled or `alloc-track` is off).
    pub peak_alloc_bytes: u64,
}

impl FlowTelemetry {
    /// The record for `stage`, if that stage ran.
    pub fn stage(&self, stage: &str) -> Option<&StageTelemetry> {
        self.stages.iter().find(|s| s.stage == stage)
    }

    /// The stage names in execution order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|s| s.stage.as_str()).collect()
    }

    /// Raises the live-node high-water mark.
    pub fn observe_live_nodes(&mut self, n: usize) {
        self.peak_live_nodes = self.peak_live_nodes.max(n);
    }

    /// Serializes to a JSON document:
    ///
    /// ```json
    /// {
    ///   "schema": "casyn.telemetry.v1",
    ///   "total_ms": 12.5,
    ///   "peak_live_nodes": 240,
    ///   "stages": [
    ///     {"stage": "map", "wall_ms": 3.1, "metrics": {"map.matches_tried": 991}}
    ///   ]
    /// }
    /// ```
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.telemetry.v1".into())),
            ("total_ms".into(), JsonValue::Number(self.total_ms)),
            ("peak_live_nodes".into(), JsonValue::Number(self.peak_live_nodes as f64)),
            ("peak_alloc_bytes".into(), JsonValue::Number(self.peak_alloc_bytes as f64)),
            (
                "stages".into(),
                JsonValue::Array(
                    self.stages
                        .iter()
                        .map(|s| {
                            JsonValue::object(vec![
                                ("stage".into(), JsonValue::Str(s.stage.clone())),
                                ("wall_ms".into(), JsonValue::Number(s.wall_ms)),
                                ("alloc_bytes".into(), JsonValue::Number(s.alloc_bytes as f64)),
                                ("peak_bytes".into(), JsonValue::Number(s.peak_bytes as f64)),
                                ("metrics".into(), JsonValue::from_map(&s.metrics)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One metric as JSON: counters and gauges become numbers, histograms an
/// object with their summary statistics.
pub fn metric_json(v: &MetricValue) -> JsonValue {
    match v {
        MetricValue::Counter(n) => JsonValue::Number(*n as f64),
        MetricValue::Gauge(g) => JsonValue::Number(*g),
        MetricValue::Histogram(h) => JsonValue::object(vec![
            ("count".into(), JsonValue::Number(h.count as f64)),
            ("mean".into(), JsonValue::Number(h.mean())),
            ("min".into(), JsonValue::Number(h.min)),
            ("max".into(), JsonValue::Number(h.max)),
            ("p50".into(), JsonValue::Number(h.p50())),
            ("p95".into(), JsonValue::Number(h.p95())),
            ("p99".into(), JsonValue::Number(h.p99())),
        ]),
    }
}

/// A registry snapshot as one JSON object keyed `stage.metric`.
pub fn snapshot_json(snap: &obs::Snapshot) -> JsonValue {
    JsonValue::Object(snap.metrics.iter().map(|(k, v)| (k.clone(), metric_json(v))).collect())
}

/// Scoped per-stage collector: remembers the registry state at stage
/// entry and, on [`StageScope::end`], appends a [`StageTelemetry`] with
/// the wall clock, the metric delta, and the heap-allocation window.
/// Also opens a trace span named after the stage, so every stage shows
/// up on its thread's track when tracing is on.
#[derive(Debug)]
pub(crate) struct StageScope {
    timer: obs::StageTimer,
    before: obs::Snapshot,
    alloc_before: u64,
    span: obs::trace::SpanGuard,
}

impl StageScope {
    pub(crate) fn begin(stage: &'static str) -> Self {
        let before = if obs::enabled() { obs::snapshot() } else { obs::Snapshot::default() };
        let alloc_before = if obs::enabled() {
            obs::alloc::reset_peak();
            obs::alloc::allocated_bytes()
        } else {
            0
        };
        StageScope {
            timer: obs::StageTimer::start(stage),
            before,
            alloc_before,
            span: obs::trace::span(stage),
        }
    }

    pub(crate) fn end(mut self, telemetry: &mut FlowTelemetry) {
        let stage = self.timer.stage().to_string();
        let (alloc_bytes, peak_bytes) = if obs::enabled() {
            (
                obs::alloc::allocated_bytes().saturating_sub(self.alloc_before),
                obs::alloc::peak_bytes(),
            )
        } else {
            (0, 0)
        };
        let wall_ms = self.timer.finish();
        let metrics = if obs::enabled() {
            let mut out: BTreeMap<String, f64> = BTreeMap::new();
            for (k, v) in obs::delta(&self.before).metrics {
                if let obs::MetricValue::Histogram(h) = &v {
                    out.insert(format!("{k}.p50"), h.p50());
                    out.insert(format!("{k}.p95"), h.p95());
                    out.insert(format!("{k}.p99"), h.p99());
                }
                out.insert(k, v.as_f64());
            }
            out
        } else {
            BTreeMap::new()
        };
        if peak_bytes > 0 {
            self.span.attr_num("peak_bytes", peak_bytes as f64);
        }
        telemetry.total_ms += wall_ms;
        telemetry.peak_alloc_bytes = telemetry.peak_alloc_bytes.max(peak_bytes);
        telemetry.stages.push(StageTelemetry { stage, wall_ms, metrics, alloc_bytes, peak_bytes });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FlowTelemetry {
        FlowTelemetry {
            stages: vec![
                StageTelemetry {
                    stage: "map".into(),
                    wall_ms: 3.25,
                    metrics: [("map.matches_tried".to_string(), 42.0)].into_iter().collect(),
                    alloc_bytes: 2048,
                    peak_bytes: 4096,
                },
                StageTelemetry {
                    stage: "route".into(),
                    wall_ms: 1.5,
                    metrics: BTreeMap::new(),
                    alloc_bytes: 0,
                    peak_bytes: 0,
                },
            ],
            total_ms: 4.75,
            peak_live_nodes: 99,
            peak_alloc_bytes: 4096,
        }
    }

    #[test]
    fn stage_lookup_and_names() {
        let t = sample();
        assert_eq!(t.stage_names(), ["map", "route"]);
        assert_eq!(t.stage("map").unwrap().wall_ms, 3.25);
        assert!(t.stage("sta").is_none());
    }

    #[test]
    fn json_contains_schema_and_stages() {
        let s = sample().to_json().to_string_pretty();
        assert!(s.contains("\"schema\": \"casyn.telemetry.v1\""));
        assert!(s.contains("\"stage\": \"map\""));
        assert!(s.contains("\"map.matches_tried\": 42"));
        assert!(s.contains("\"peak_live_nodes\": 99"));
        assert!(s.contains("\"peak_alloc_bytes\": 4096"));
        assert!(s.contains("\"alloc_bytes\": 2048"));
    }

    #[test]
    fn metric_json_expands_histograms() {
        let reg = obs::Registry::new();
        reg.hist_record("t.sizes", 2.0);
        reg.hist_record("t.sizes", 6.0);
        reg.counter_add("t.hits", 3);
        let snap = reg.snapshot();
        let s = snapshot_json(&snap).to_string_pretty();
        assert!(s.contains("\"t.hits\": 3"));
        assert!(s.contains("\"count\": 2"));
        assert!(s.contains("\"mean\": 4"));
        assert!(s.contains("\"p50\""));
        assert!(s.contains("\"p99\""));
    }

    #[test]
    fn observe_live_nodes_keeps_max() {
        let mut t = FlowTelemetry::default();
        t.observe_live_nodes(10);
        t.observe_live_nodes(4);
        assert_eq!(t.peak_live_nodes, 10);
    }
}
