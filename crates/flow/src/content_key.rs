//! Shared content-key derivation: the stable-field hashing that both
//! the run ledger and the `casyn-serve` artifact cache address with.
//!
//! A content key is FNV-1a over a *canonical string* built from stable
//! fields only. Two rules keep keys meaningful:
//!
//! 1. **Timings never enter a key.** Wall-clock and allocator readings
//!    are machine noise; hashing them would give identical runs
//!    different addresses and make caching impossible. Only inputs
//!    (design bytes, library contents, flow parameters) and
//!    deterministic outputs (quality metrics) are hashed.
//! 2. **Every field is length-delimited by construction.** Fields are
//!    joined with `\x1f` (unit separator), which [`KeyBuilder`] strips
//!    from field values, so `("ab", "c")` and `("a", "bc")` cannot
//!    collide.
//!
//! [`KeyBuilder`] is the streaming canonicalizer; [`library_fingerprint`]
//! hashes the electrical identity of a cell library; the ledger's
//! `RunRecord::content_hash` and serve's cache keys are both built on
//! top of it.

use casyn_library::Library;

/// 64-bit FNV-1a over a byte string — the workspace's content hash.
/// Dependency-free and stable across platforms; collision resistance is
/// not a goal (records are not adversarial), addressability is.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Builds a canonical string field by field and hashes it with FNV-1a.
///
/// The domain tag passed to [`KeyBuilder::new`] namespaces key spaces:
/// a ledger record and a serve cache entry over the same inputs hash to
/// different addresses, so one can never be mistaken for the other.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    canon: String,
}

const SEP: char = '\x1f';

impl KeyBuilder {
    /// Starts a key in the given domain (e.g. `"casyn.run.v1"`).
    pub fn new(domain: &str) -> KeyBuilder {
        let mut b = KeyBuilder { canon: String::new() };
        b.push_field(domain);
        b
    }

    fn push_field(&mut self, field: &str) {
        // the separator is reserved; strip it so no field can forge a
        // boundary
        for c in field.chars().filter(|&c| c != SEP) {
            self.canon.push(c);
        }
        self.canon.push(SEP);
    }

    /// Appends a string field.
    pub fn str(mut self, v: &str) -> KeyBuilder {
        self.push_field(v);
        self
    }

    /// Appends a number using the shortest-roundtrip float formatting,
    /// so `0.1` and `0.10000000000000001` canonicalize identically iff
    /// they are the same f64.
    pub fn num(mut self, v: f64) -> KeyBuilder {
        self.push_field(&format!("{v}"));
        self
    }

    /// Appends an integer field.
    pub fn int(mut self, v: u64) -> KeyBuilder {
        self.push_field(&format!("{v}"));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, v: bool) -> KeyBuilder {
        self.push_field(if v { "t" } else { "f" });
        self
    }

    /// Appends a previously computed 64-bit hash (hex, zero-padded).
    pub fn hash(mut self, v: u64) -> KeyBuilder {
        self.push_field(&format!("{v:016x}"));
        self
    }

    /// Appends a slice of numbers as one field group, preserving order
    /// and length.
    pub fn nums(mut self, vs: &[f64]) -> KeyBuilder {
        self.push_field(&format!("#{}", vs.len()));
        for &v in vs {
            self.push_field(&format!("{v}"));
        }
        self
    }

    /// The canonical string built so far (for tests and debugging).
    pub fn canon(&self) -> &str {
        &self.canon
    }

    /// Hashes the canonical string.
    pub fn finish(self) -> u64 {
        fnv1a64(self.canon.as_bytes())
    }
}

/// Hashes the electrical identity of a library: its name plus, per
/// cell, every field that influences mapping, placement, routing or
/// timing. Two libraries with the same fingerprint produce
/// bit-identical flow results for the same design and parameters, so
/// the fingerprint is a sound cache-key component.
pub fn library_fingerprint(lib: &Library) -> u64 {
    let mut b = KeyBuilder::new("casyn.lib.v1").str(lib.name()).int(lib.cells().len() as u64);
    for c in lib.cells() {
        b = b
            .str(&c.name)
            .num(c.area)
            .num(c.width)
            .int(c.num_pins as u64)
            .num(c.pin_cap)
            .num(c.intrinsic)
            .num(c.drive_res)
            .bool(c.sequential)
            .num(c.clk_to_q)
            .num(c.setup)
            .int(c.patterns.len() as u64);
        for p in &c.patterns {
            b = b.str(&p.to_string());
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use casyn_library::{corelib018, Library};

    #[test]
    fn fnv_vectors() {
        // standard FNV-1a test vectors
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn keys_are_stable_across_builds() {
        // pinned vectors: these keys are persisted in ledger file names
        // and serve cache addresses, so they must never drift between
        // versions. If this test fails, the canonicalization changed and
        // every existing content address is invalidated.
        assert_eq!(KeyBuilder::new("casyn.test").finish(), 0x7d2d_2086_1b8f_f146);
        let k = KeyBuilder::new("casyn.run.v1")
            .str("t8")
            .hash(0xdead_beef)
            .num(0.1)
            .int(3)
            .bool(true)
            .nums(&[0.0, 0.001]);
        assert_eq!(
            k.canon(),
            "casyn.run.v1\u{1f}t8\u{1f}00000000deadbeef\u{1f}0.1\u{1f}3\u{1f}t\u{1f}#2\u{1f}0\u{1f}0.001\u{1f}"
        );
        assert_eq!(k.finish(), 0x8008_49b7_e40e_f642);
    }

    #[test]
    fn fields_are_delimited() {
        // ("ab","c") must not collide with ("a","bc")
        let k1 = KeyBuilder::new("d").str("ab").str("c").finish();
        let k2 = KeyBuilder::new("d").str("a").str("bc").finish();
        assert_ne!(k1, k2);
        // list length is part of the key
        let k3 = KeyBuilder::new("d").nums(&[1.0, 2.0]).finish();
        let k4 = KeyBuilder::new("d").nums(&[1.0]).nums(&[2.0]).finish();
        assert_ne!(k3, k4);
        // domains separate key spaces over identical fields
        let k5 = KeyBuilder::new("ledger").str("x").finish();
        let k6 = KeyBuilder::new("serve").str("x").finish();
        assert_ne!(k5, k6);
    }

    fn rebuilt(tweak: impl Fn(&mut casyn_library::Cell)) -> Library {
        let base = corelib018();
        let mut lib = Library::new(base.name());
        for (i, c) in base.cells().iter().enumerate() {
            let mut c = c.clone();
            if i == 0 {
                tweak(&mut c);
            }
            lib.push(c);
        }
        lib
    }

    #[test]
    fn library_fingerprint_tracks_electrical_identity() {
        let fp = library_fingerprint(&corelib018());
        assert_eq!(fp, library_fingerprint(&rebuilt(|_| {})), "deterministic");
        // renaming a cell or touching a delay coefficient moves the key
        assert_ne!(library_fingerprint(&rebuilt(|c| c.name = "ND2X".into())), fp);
        assert_ne!(library_fingerprint(&rebuilt(|c| c.intrinsic += 0.01)), fp);
        assert_ne!(library_fingerprint(&rebuilt(|c| c.area += 1.0)), fp);
    }
}
