//! Drives the built `casyn` binary end to end: a faulted batch exits
//! non-zero with typed errors and a crash bundle, and `--resume` finishes
//! the remaining work into a report identical (modulo wall clock) to an
//! uninterrupted run.

use casyn_obs::json::JsonValue;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn design(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/designs")
        .join(name)
        .canonicalize()
        .unwrap()
        .to_str()
        .unwrap()
        .to_string()
}

/// Writes a four-job manifest over the two example designs; with
/// `fault_on_c`, job `c` carries a one-shot panic fault at the map stage.
fn manifest(dir: &Path, file: &str, fault_on_c: bool) -> PathBuf {
    let a = design("ex_a.pla");
    let b = design("ex_b.pla");
    let fault = if fault_on_c { r#", "fault_plan": "map:panic:1""# } else { "" };
    let text = format!(
        r#"{{"jobs": [
  {{"design": "{a}", "name": "a", "ks": [0.0, 0.1]}},
  {{"design": "{b}", "name": "b", "ks": [0.0, 0.1]}},
  {{"design": "{a}", "name": "c", "ks": [0.0, 0.1]{fault}}},
  {{"design": "{b}", "name": "d", "ks": [0.0, 0.1]}}
]}}"#
    );
    let path = dir.join(file);
    fs::write(&path, text).unwrap();
    path
}

fn casyn(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_casyn")).args(args).output().expect("spawn casyn")
}

fn read_json(path: &Path) -> JsonValue {
    JsonValue::parse(&fs::read_to_string(path).unwrap())
        .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Wall-clock fields (`wall_ms` per job and per telemetry stage,
/// `total_ms` per row telemetry) are the only run-to-run nondeterminism
/// in a report.
fn strip_wall_ms(report: &str) -> String {
    report
        .lines()
        .filter(|l| !l.contains("\"wall_ms\"") && !l.contains("\"total_ms\""))
        .collect::<Vec<_>>()
        .join("\n")
}

#[test]
fn faulted_batch_resumes_into_the_uninterrupted_report() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("batch_resume");
    fs::create_dir_all(&dir).unwrap();
    let clean_manifest = manifest(&dir, "clean.json", false);
    let fault_manifest = manifest(&dir, "fault.json", true);
    let full = dir.join("full.json");
    let partial = dir.join("partial.json");
    let resumed = dir.join("resumed.json");
    let crashes = dir.join("crashes");

    // the uninterrupted reference run
    let out = casyn(&[
        "batch",
        clean_manifest.to_str().unwrap(),
        "--jobs",
        "2",
        "--out",
        full.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "clean run: {}", String::from_utf8_lossy(&out.stderr));

    // the faulted run: job c panics at map, the batch exits non-zero, the
    // report carries the typed error, and a crash bundle is written
    let out = casyn(&[
        "batch",
        fault_manifest.to_str().unwrap(),
        "--jobs",
        "2",
        "--out",
        partial.to_str().unwrap(),
        "--crash-dir",
        crashes.to_str().unwrap(),
    ]);
    assert!(!out.status.success(), "faulted batch must exit non-zero");
    let doc = read_json(&partial);
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("casyn.batch.v1"));
    assert_eq!(doc.get("jobs_ok").unwrap().as_f64(), Some(3.0));
    assert_eq!(doc.get("jobs_failed").unwrap().as_f64(), Some(1.0));
    let jobs = doc.get("jobs").unwrap().as_array().unwrap();
    assert_eq!(jobs.len(), 4);
    let c = jobs.iter().find(|j| j.get("name").unwrap().as_str() == Some("c")).unwrap();
    assert_eq!(c.get("status").unwrap().as_str(), Some("error"));
    let err = c.get("error").unwrap();
    assert_eq!(err.get("kind").unwrap().as_str(), Some("panicked"));
    assert!(err.get("detail").unwrap().as_str().unwrap().contains("map"));
    let bundle = read_json(&crashes.join("c.crash.json"));
    assert_eq!(bundle.get("schema").unwrap().as_str(), Some("casyn.crash.v1"));
    assert_eq!(bundle.get("error").unwrap().get("kind").unwrap().as_str(), Some("panicked"));
    assert!(bundle.get("fault_plan").unwrap().as_str().unwrap().contains("map:panic:1"));

    // resume: only the failed job re-runs, the batch exits zero
    let out = casyn(&[
        "batch",
        clean_manifest.to_str().unwrap(),
        "--jobs",
        "2",
        "--resume",
        partial.to_str().unwrap(),
        "--out",
        resumed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "resume: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for line in ["[a] resumed", "[b] resumed", "[d] resumed", "[c] ok"] {
        assert!(stdout.contains(line), "missing {line:?} in:\n{stdout}");
    }

    // modulo wall clock, the merged report IS the uninterrupted one
    let full_text = strip_wall_ms(&fs::read_to_string(&full).unwrap());
    let resumed_text = strip_wall_ms(&fs::read_to_string(&resumed).unwrap());
    assert_eq!(full_text, resumed_text);

    // a mid-run checkpoint document resumes the same way a final report
    // does (the schema an interrupted batch actually leaves behind)
    let jobs_doc = doc.get("jobs").unwrap().clone();
    let checkpoint = dir.join("checkpoint.json");
    let ck = JsonValue::object(vec![
        ("schema".into(), JsonValue::Str("casyn.checkpoint.v1".into())),
        ("jobs".into(), jobs_doc),
    ]);
    fs::write(&checkpoint, ck.to_string_pretty()).unwrap();
    let out = casyn(&[
        "batch",
        clean_manifest.to_str().unwrap(),
        "--jobs",
        "2",
        "--resume",
        checkpoint.to_str().unwrap(),
        "--out",
        resumed.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "checkpoint resume: {}", String::from_utf8_lossy(&out.stderr));
    let resumed_text = strip_wall_ms(&fs::read_to_string(&resumed).unwrap());
    assert_eq!(full_text, resumed_text);
}
