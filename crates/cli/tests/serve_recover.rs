//! Crash-recovery end to end against the real binary: a `casyn serve`
//! daemon with a `--state-dir` is killed with SIGKILL while one job is
//! complete and another is in flight, restarted, and must bring every
//! job to a terminal state — serving the pre-crash result straight from
//! the checksummed disk cache, with zero router work for it.

use casyn_obs::json::JsonValue;
use casyn_serve::request_json;
use std::fs;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn design(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/designs")
        .join(name)
        .canonicalize()
        .unwrap()
        .to_str()
        .unwrap()
        .to_string()
}

/// Starts `casyn serve --state-dir <state>` on an ephemeral port and
/// parses the bound address from the startup line.
fn spawn_daemon(state: &Path) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_casyn"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--jobs",
            "2",
            "--state-dir",
            state.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn casyn serve");
    let stdout = child.stdout.take().unwrap();
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("casyn-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
        .to_string();
    (child, addr)
}

fn one_job_manifest(name: &str, design_path: &str, ks: &str) -> String {
    format!(r#"{{"jobs": [{{"design": "{design_path}", "name": "{name}", "ks": [{ks}]}}]}}"#)
}

/// Submits one job and returns its id.
fn submit(addr: &str, manifest: &str) -> i64 {
    let (status, doc) = request_json(addr, "POST", "/jobs", Some(manifest)).unwrap();
    assert_eq!(status, 202, "submit: {doc:?}");
    let job = doc.get("jobs").and_then(|v| v.as_array()).and_then(|a| a.first()).unwrap();
    job.get("id").and_then(|v| v.as_f64()).unwrap() as i64
}

fn result_wait(addr: &str, id: i64) -> JsonValue {
    let (status, doc) =
        request_json(addr, "GET", &format!("/jobs/{id}/result?wait=1"), None).unwrap();
    assert_eq!(status, 200, "result {id}: {doc:?}");
    doc
}

fn metric(addr: &str, key: &str) -> f64 {
    let (status, doc) = request_json(addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    doc.get("metrics").and_then(|m| m.get(key)).and_then(|v| v.as_f64()).unwrap_or(0.0)
}

#[test]
fn sigkill_mid_run_recovers_from_the_state_dir() {
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("serve_recover");
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    let state = dir.join("state");
    let ma = one_job_manifest("done-before-crash", &design("ex_a.pla"), "0.0, 0.5");
    let mb = one_job_manifest("inflight-at-crash", &design("ex_b.pla"), "0.0, 0.1, 0.5, 1.0");

    // first life: job 0 completes, job 1 is admitted and then the
    // process dies hard — no drain, no flush beyond the fsynced journal
    let (mut child, addr) = spawn_daemon(&state);
    let ida = submit(&addr, &ma);
    let ra = result_wait(&addr, ida);
    assert_eq!(ra.get("status").and_then(|v| v.as_str()), Some("done"));
    let rows_before = ra.get("rows").and_then(|v| v.as_array()).unwrap().len();
    assert!(rows_before > 0);
    let idb = submit(&addr, &mb);
    child.kill().unwrap(); // SIGKILL: the daemon gets no chance to clean up
    child.wait().unwrap();

    // the journal survived the kill
    assert!(state.join("casyn.wal.v1").exists(), "journal must exist after SIGKILL");

    // second life: replay brings both jobs to terminal states
    let (mut child, addr) = spawn_daemon(&state);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (_, sa) = request_json(&addr, "GET", &format!("/jobs/{ida}"), None).unwrap();
        let (_, sb) = request_json(&addr, "GET", &format!("/jobs/{idb}"), None).unwrap();
        let terminal = |d: &JsonValue| {
            matches!(
                d.get("status").and_then(|v| v.as_str()),
                Some("done") | Some("failed") | Some("cancelled")
            )
        };
        if terminal(&sa) && terminal(&sb) {
            break;
        }
        assert!(Instant::now() < deadline, "jobs not terminal after restart: {sa:?} {sb:?}");
        std::thread::sleep(Duration::from_millis(100));
    }

    // the pre-crash completed job is a disk cache hit with its rows intact
    let ra2 = result_wait(&addr, ida);
    assert_eq!(ra2.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(ra2.get("cache").and_then(|v| v.as_str()), Some("disk"));
    assert_eq!(ra2.get("rows").and_then(|v| v.as_array()).unwrap().len(), rows_before);
    // the in-flight job reached a real result, not an error
    let rb2 = result_wait(&addr, idb);
    assert_eq!(rb2.get("status").and_then(|v| v.as_str()), Some("done"));

    // zero-reroute proof: resubmitting the recovered job's manifest does
    // not move route.iterations (or run any flow) in this process
    let iters = metric(&addr, "route.iterations");
    let computes = metric(&addr, "serve.computes");
    let ida2 = submit(&addr, &ma);
    let ra3 = result_wait(&addr, ida2);
    assert_eq!(ra3.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(metric(&addr, "route.iterations"), iters, "disk hit re-ran the router");
    assert_eq!(metric(&addr, "serve.computes"), computes);
    assert!(metric(&addr, "serve.cache.disk_hits") >= 1.0);

    let (status, _) = request_json(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    child.wait().unwrap();
}
