//! `casyn` — command-line driver for the congestion-aware synthesis flow.
//!
//! ```text
//! casyn map <design.pla|design.blif> [options]    run one full flow
//! casyn run <design> [options]                    alias for sweep (default K ladder)
//! casyn sweep <design> --ks 0,0.1,1 [options]     K sweep (paper Tables 2/4)
//! casyn loop <design> [options]                   the Fig. 3 methodology loop
//! casyn batch <manifest.json> [options]           run many designs concurrently
//! casyn heatmap <heatmap.json>                    render an exported heat map
//! casyn diff <runA.json> <runB.json>              compare two casyn.run.v1 records
//! casyn serve [--listen host:port]                run the synthesis service
//! casyn submit <manifest.json> --server h:p       submit jobs to a running service
//! casyn shutdown --server h:p                     gracefully drain a running service
//! casyn loadgen [options]                         service throughput bench (BENCH_serve.json)
//! casyn top <host:port> [options]                 live service dashboard (polls /stats)
//!
//! options:
//!   --k <f>            congestion factor K (map; default 0.5)
//!   --ks <list>        comma-separated K values (sweep/batch default)
//!   --scheme <s>       dagon | cone | pdp (default pdp)
//!   --placer <b>       global placement backend: kway | bisect (default
//!                      kway; the CASYN_PLACER env var sets the same)
//!   --util <f>         target K=0 utilization for the derived die (default 0.611)
//!   --layers <n>       metal layers (default 3)
//!   --jobs <n>         worker threads for sweep/batch (default: CASYN_JOBS
//!                      env var, else available_parallelism)
//!   --out <path>       write the batch report as JSON (batch only); while
//!                      the batch runs the file holds a casyn.checkpoint.v1
//!                      document that is updated after every finished job
//!   --resume <path>    batch: skip jobs already "ok" in a previous report
//!                      or checkpoint (matched by name + design)
//!   --retries <n>      batch: re-run a failed job up to n times (default 0)
//!   --validate         run stage-boundary invariant checks (always on in
//!                      debug builds)
//!   --fault-plan <p>   inject deterministic faults: comma-separated
//!                      stage:kind[:nth] items plus optional seed=N, e.g.
//!                      "map:panic:1,route:corrupt:2,seed=42"; kinds are
//!                      panic, deadline, corrupt
//!   --crash-dir <dir>  batch: write a casyn.crash.v1 reproducer bundle
//!                      per failed job
//!   --verilog <path>   write the mapped netlist as structural Verilog
//!   --blif <path>      write the optimized network as BLIF
//!   --dot <path>       write the mapped netlist as Graphviz DOT
//!   --optimize         run technology-independent extraction first
//!   --clock <ns>       report slack against this required time
//!   --metrics-out <p>  collect stage metrics and write telemetry JSON
//!   --heatmap <path>   write the final congestion heat map as JSON
//!   --trace            debug-level stage logging (same as CASYN_LOG=debug)
//!   --trace-out <p>    record the hierarchical span timeline and write it
//!                      in Chrome trace-event format (load in Perfetto or
//!                      chrome://tracing); for batch, pass a directory to
//!                      get one trace file per job plus a trace_path field
//!                      on each report row
//!   --spans-out <p>    write the same span timeline as casyn.trace.v1 JSON
//!   --route-out <p>    write the router convergence series as casyn.route.v1
//!                      JSON (per-iteration overflow, reroutes, history cost)
//!   --audit-out <p>    write the overflow-attribution report as
//!                      casyn.audit.v1 JSON (per-boundary net demand shares)
//!   --snapshot-stride <n>  embed a full congestion-map snapshot in the
//!                      casyn.route.v1 series every n router iterations
//!                      (0 = off, the default)
//!   --ledger <dir>     append a content-addressed casyn.run.v1 record for
//!                      this run to the ledger directory (map/run/sweep/loop);
//!                      compare two records later with `casyn diff`
//!   --tolerance <f>    diff: widen the wall-clock/allocation tolerance band
//!                      to ±f× (default 1.0; stable metrics always compare
//!                      exactly)
//!   --listen <h:p>     serve: listen address (default 127.0.0.1:7878;
//!                      port 0 binds an ephemeral port)
//!   --server <h:p>     submit/shutdown: address of the running service
//!   --queue-cap <n>    serve/loadgen: admission queue capacity (default 64;
//!                      submissions that do not fit are rejected with 429)
//!   --state-dir <dir>  serve: durable state directory holding the
//!                      casyn.wal.v1 job journal and the checksummed disk
//!                      cache; on restart the journal is replayed, finished
//!                      jobs are served from disk and unfinished ones re-run
//!   --mem-limit <n>    serve: shed new submissions with 503 + Retry-After
//!                      while live heap exceeds n bytes (k/m/g suffixes
//!                      accepted; default 0 = watchdog off)
//!   --result-wait <s>  serve: seconds a result?wait=1 request blocks
//!                      before answering 409 (default 600)
//!   --io-fault-plan <spec>  serve: I/O chaos plan armed at stages wal,
//!                      cache and conn (e.g. "wal:torn_write:2,conn:conn_drop:1")
//!   --clients <n>      loadgen: concurrent client threads (default 2)
//!   --designs <n>      loadgen: distinct synthetic designs (default 6)
//!   --interval <s>     top: seconds between dashboard refreshes (default 1)
//!   --frames <n>       top: frames to render before exiting, 0 = run
//!                      until interrupted (default 0); --frames 1 prints
//!                      one snapshot without clearing the screen
//! ```
//!
//! The batch manifest is a JSON document, either a top-level array of
//! jobs or `{"jobs": [...]}`; every field but `design` is optional:
//!
//! ```json
//! {"jobs": [
//!   {"design": "examples/designs/count8.pla", "ks": [0.0, 0.1, 1.0],
//!    "name": "count8", "util": 0.611, "layers": 3, "optimize": false,
//!    "placer": "kway", "deadline_ms": 60000, "fault_plan": "map:panic:1"}
//! ]}
//! ```
//!
//! `inject_panic: true` is the legacy spelling of
//! `"fault_plan": "decompose:panic:1"`: the job panics on purpose to
//! exercise the pool's panic isolation end to end. Either way the job
//! fails with a typed error in the report and siblings complete.

use casyn_core::{CostKind, MapOptions, PartitionScheme};
use casyn_exec::{FaultPlan, Pool};
use casyn_flow::batch::{
    run_batch_job, run_batch_observed, BatchJob, BatchJobReport, BatchOptions,
};
use casyn_flow::telemetry::snapshot_json;
use casyn_flow::{
    diff_records, file_stem, fnv1a64, format_diff, full_flow, k_row_json, k_sweep_prepared_pool,
    load_design, parse_manifest, prepare_pool, run_methodology_prepared, sequential_flow,
    DiffTolerance, FlowError, FlowOptions, KSweepEntry, ManifestDefaults, ManifestJob, RunParams,
    RunRecord, Stage,
};
use casyn_logic::OptimizeOptions;
use casyn_netlist::blif::to_blif;
use casyn_netlist::dot::mapped_to_dot;
use casyn_netlist::network::Network;
use casyn_netlist::verilog::to_verilog;
use casyn_obs as obs;
use casyn_obs::json::JsonValue;
use casyn_place::PlacerBackend;
use casyn_route::CongestionMap;
use std::collections::HashMap;
use std::fs;
use std::process::ExitCode;
use std::sync::Mutex;

#[derive(Debug, Clone)]
struct Args {
    command: String,
    input: String,
    /// Second positional input — only the `diff` command takes one.
    input2: String,
    k: f64,
    ks: Vec<f64>,
    scheme: PartitionScheme,
    util: f64,
    layers: usize,
    verilog: Option<String>,
    blif: Option<String>,
    dot: Option<String>,
    optimize: bool,
    clock: Option<f64>,
    metrics_out: Option<String>,
    heatmap: Option<String>,
    trace: bool,
    trace_out: Option<String>,
    spans_out: Option<String>,
    route_out: Option<String>,
    audit_out: Option<String>,
    snapshot_stride: usize,
    ledger: Option<String>,
    tolerance: Option<f64>,
    jobs: Option<usize>,
    placer: Option<PlacerBackend>,
    out: Option<String>,
    validate: bool,
    retries: u32,
    resume: Option<String>,
    fault_plan: Option<FaultPlan>,
    crash_dir: Option<String>,
    listen: String,
    server: Option<String>,
    queue_cap: usize,
    clients: usize,
    designs: usize,
    state_dir: Option<String>,
    mem_limit: u64,
    result_wait: u64,
    io_fault_plan: Option<FaultPlan>,
    interval: f64,
    frames: usize,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: casyn <map|run|sweep|loop|batch|heatmap|diff|serve|submit|shutdown|loadgen|top> \
         [<design.pla|design.blif|manifest.json|heatmap.json|run.json|host:port>] [options]"
    );
    eprintln!("run `casyn help` for the option list");
    ExitCode::FAILURE
}

/// Parses a `--fault-plan` spec and rejects stage names the flow does not
/// have, so a typo'd plan fails up front instead of silently never firing.
fn parse_fault_plan(spec: &str) -> Result<FaultPlan, String> {
    let plan = FaultPlan::parse(spec)?;
    for s in plan.specs() {
        if Stage::parse(&s.stage).is_none() {
            let known: Vec<&str> = Stage::ALL.iter().map(|st| st.name()).collect();
            return Err(format!(
                "fault plan: unknown stage {:?} (expected one of {})",
                s.stage,
                known.join(", ")
            ));
        }
    }
    Ok(plan)
}

/// Parses a byte count with an optional binary `k`/`m`/`g` suffix
/// (`--mem-limit 512m`).
fn parse_bytes(s: &str) -> Result<u64, String> {
    let t = s.trim().to_ascii_lowercase();
    let (digits, mult) = if let Some(d) = t.strip_suffix('k') {
        (d, 1u64 << 10)
    } else if let Some(d) = t.strip_suffix('m') {
        (d, 1 << 20)
    } else if let Some(d) = t.strip_suffix('g') {
        (d, 1 << 30)
    } else {
        (t.as_str(), 1)
    };
    let n: u64 = digits.parse().map_err(|e| format!("--mem-limit: {e}"))?;
    n.checked_mul(mult).ok_or_else(|| format!("--mem-limit: {s} overflows"))
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().ok_or("missing command")?,
        input: String::new(),
        input2: String::new(),
        k: 0.5,
        ks: vec![0.0, 0.1, 0.5, 1.0, 5.0],
        scheme: PartitionScheme::PlacementDriven,
        util: 0.611,
        layers: 3,
        verilog: None,
        blif: None,
        dot: None,
        optimize: false,
        clock: None,
        metrics_out: None,
        heatmap: None,
        trace: false,
        trace_out: None,
        spans_out: None,
        route_out: None,
        audit_out: None,
        snapshot_stride: 0,
        ledger: None,
        tolerance: None,
        jobs: None,
        placer: None,
        out: None,
        validate: false,
        retries: 0,
        resume: None,
        fault_plan: None,
        crash_dir: None,
        listen: "127.0.0.1:7878".into(),
        server: None,
        queue_cap: 64,
        clients: 2,
        designs: 6,
        state_dir: None,
        mem_limit: 0,
        result_wait: 600,
        io_fault_plan: None,
        interval: 1.0,
        frames: 0,
    };
    let mut it = argv[1..].iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--k" => args.k = next("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--ks" => {
                args.ks = next("--ks")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--ks: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--scheme" => {
                args.scheme = match next("--scheme")?.as_str() {
                    "dagon" => PartitionScheme::Dagon,
                    "cone" => PartitionScheme::Cone,
                    "pdp" | "placement-driven" => PartitionScheme::PlacementDriven,
                    other => return Err(format!("unknown scheme: {other}")),
                }
            }
            "--util" => args.util = next("--util")?.parse().map_err(|e| format!("--util: {e}"))?,
            "--layers" => {
                args.layers = next("--layers")?.parse().map_err(|e| format!("--layers: {e}"))?
            }
            "--verilog" => args.verilog = Some(next("--verilog")?),
            "--blif" => args.blif = Some(next("--blif")?),
            "--dot" => args.dot = Some(next("--dot")?),
            "--optimize" => args.optimize = true,
            "--metrics-out" => args.metrics_out = Some(next("--metrics-out")?),
            "--heatmap" => args.heatmap = Some(next("--heatmap")?),
            "--trace" => args.trace = true,
            "--trace-out" => args.trace_out = Some(next("--trace-out")?),
            "--spans-out" => args.spans_out = Some(next("--spans-out")?),
            "--route-out" => args.route_out = Some(next("--route-out")?),
            "--audit-out" => args.audit_out = Some(next("--audit-out")?),
            "--snapshot-stride" => {
                args.snapshot_stride = next("--snapshot-stride")?
                    .parse()
                    .map_err(|e| format!("--snapshot-stride: {e}"))?
            }
            "--ledger" => args.ledger = Some(next("--ledger")?),
            "--tolerance" => {
                let t: f64 =
                    next("--tolerance")?.parse().map_err(|e| format!("--tolerance: {e}"))?;
                if t.is_nan() || t < 0.0 {
                    return Err("--tolerance must be a non-negative number".into());
                }
                args.tolerance = Some(t);
            }
            "--jobs" => {
                let n: usize = next("--jobs")?.parse().map_err(|e| format!("--jobs: {e}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                args.jobs = Some(n);
            }
            "--placer" => {
                let v = next("--placer")?;
                args.placer = Some(
                    PlacerBackend::parse(&v)
                        .ok_or(format!("--placer: unknown backend {v:?} (kway | bisect)"))?,
                );
            }
            "--out" => args.out = Some(next("--out")?),
            "--validate" => args.validate = true,
            "--retries" => {
                args.retries = next("--retries")?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--resume" => args.resume = Some(next("--resume")?),
            "--listen" => args.listen = next("--listen")?,
            "--server" => args.server = Some(next("--server")?),
            "--queue-cap" => {
                args.queue_cap =
                    next("--queue-cap")?.parse().map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--clients" => {
                let n: usize = next("--clients")?.parse().map_err(|e| format!("--clients: {e}"))?;
                if n == 0 {
                    return Err("--clients must be at least 1".into());
                }
                args.clients = n;
            }
            "--designs" => {
                let n: usize = next("--designs")?.parse().map_err(|e| format!("--designs: {e}"))?;
                if n == 0 {
                    return Err("--designs must be at least 1".into());
                }
                args.designs = n;
            }
            "--state-dir" => args.state_dir = Some(next("--state-dir")?),
            "--mem-limit" => args.mem_limit = parse_bytes(&next("--mem-limit")?)?,
            "--result-wait" => {
                args.result_wait =
                    next("--result-wait")?.parse().map_err(|e| format!("--result-wait: {e}"))?
            }
            "--io-fault-plan" => {
                let plan = FaultPlan::parse(&next("--io-fault-plan")?)?;
                for s in plan.specs() {
                    if !matches!(s.stage.as_str(), "wal" | "cache" | "conn") {
                        return Err(format!(
                            "io fault plan: unknown stage {:?} (expected wal, cache or conn)",
                            s.stage
                        ));
                    }
                }
                args.io_fault_plan = Some(plan);
            }
            "--interval" => {
                let v: f64 = next("--interval")?.parse().map_err(|e| format!("--interval: {e}"))?;
                if !v.is_finite() || v <= 0.0 {
                    return Err("--interval must be a positive number of seconds".into());
                }
                args.interval = v;
            }
            "--frames" => {
                args.frames = next("--frames")?.parse().map_err(|e| format!("--frames: {e}"))?
            }
            "--fault-plan" => args.fault_plan = Some(parse_fault_plan(&next("--fault-plan")?)?),
            "--crash-dir" => args.crash_dir = Some(next("--crash-dir")?),
            "--clock" => {
                args.clock = Some(next("--clock")?.parse().map_err(|e| format!("--clock: {e}"))?)
            }
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            // `diff` is the one command taking two positionals (run A, run B)
            other
                if args.command == "diff" && args.input2.is_empty() && !other.starts_with('-') =>
            {
                args.input2 = other.to_string()
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    // service commands have no input positional (submit's is the manifest)
    let no_input = matches!(args.command.as_str(), "help" | "serve" | "shutdown" | "loadgen");
    if args.command == "top" && args.input.is_empty() {
        return Err("top needs a server address (host:port)".into());
    }
    if !no_input && args.input.is_empty() {
        return Err("missing input design".into());
    }
    if args.command == "diff" && args.input2.is_empty() {
        return Err("diff needs two casyn.run.v1 record paths".into());
    }
    Ok(args)
}

fn flow_options(args: &Args) -> FlowOptions {
    let mut opts = FlowOptions { target_utilization: args.util, ..Default::default() };
    opts.route.layers = args.layers;
    opts.route.snapshot_stride = args.snapshot_stride;
    if args.optimize {
        opts.optimize = Some(OptimizeOptions::default());
    }
    if args.validate {
        opts.validate = true;
    }
    if let Some(b) = args.placer {
        opts.placer.backend = b;
    }
    opts.fault = args.fault_plan.as_ref().map(|p| p.fresh());
    opts
}

fn report(r: &casyn_flow::FlowResult, clock: Option<f64>) {
    println!(
        "cells {:>7}   cell area {:>10.1} um^2   utilization {:>5.2}%",
        r.num_cells, r.cell_area, r.utilization_pct
    );
    println!(
        "die {:>10.0} um^2   rows {:>4}   routed wirelength {:>10.0} um",
        r.floorplan.die_area(),
        r.floorplan.num_rows,
        r.route.total_wirelength
    );
    println!(
        "routing violations {:>5}   peak congestion {:>5.1}%   iterations {}",
        r.route.violations,
        100.0 * r.route.congestion.max_util(),
        r.route.iterations
    );
    print!("{}", casyn_flow::format_convergence_sparkline(&r.route.convergence));
    if r.route.violations > 0 {
        print!("{}", casyn_flow::format_audit_table("overflow attribution", &r.route.audit, 8));
    }
    println!("critical path {} at {:.3} ns", r.sta.critical_endpoints(), r.sta.critical_arrival());
    if let Some(t) = clock {
        println!("clock {:.3} ns: WNS {:.3} ns, TNS {:.3} ns", t, r.sta.wns(t), r.sta.tns(t));
    }
}

fn write_artifacts(
    args: &Args,
    network: &Network,
    r: &casyn_flow::FlowResult,
) -> Result<(), String> {
    if let Some(path) = &args.verilog {
        fs::write(path, to_verilog(&r.netlist, "casyn_top"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.blif {
        fs::write(path, to_blif(network, "casyn_top"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.dot {
        fs::write(path, mapped_to_dot(&r.netlist, "casyn_top"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Writes the artifacts behind `--metrics-out` and `--heatmap` from the
/// final flow result of the chosen command (the last sweep row, the
/// converged loop result, ...).
fn write_observability(args: &Args, r: Option<&casyn_flow::FlowResult>) -> Result<(), String> {
    if let Some(path) = &args.metrics_out {
        let mut doc = r
            .map(|r| r.telemetry.to_json())
            .unwrap_or_else(|| casyn_flow::FlowTelemetry::default().to_json());
        if let JsonValue::Object(entries) = &mut doc {
            entries.push(("metrics".into(), snapshot_json(&obs::snapshot())));
        }
        fs::write(path, doc.to_string_pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.heatmap {
        let r = r.ok_or("--heatmap needs a completed flow")?;
        fs::write(path, r.route.congestion.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.route_out {
        let r = r.ok_or("--route-out needs a completed flow")?;
        fs::write(path, r.route.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.audit_out {
        let r = r.ok_or("--audit-out needs a completed flow")?;
        fs::write(path, r.route.audit.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Appends a content-addressed `casyn.run.v1` record for this run to the
/// `--ledger` directory (a no-op when the flag is absent). The design
/// hash is FNV-1a over the raw design file bytes, so the same netlist
/// under a different name still diffs cleanly.
fn append_ledger(args: &Args, ks: &[f64], rows: &[KSweepEntry]) -> Result<(), String> {
    let Some(dir) = &args.ledger else {
        return Ok(());
    };
    if rows.is_empty() {
        return Ok(());
    }
    let bytes = fs::read(&args.input).map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let scheme = match args.scheme {
        PartitionScheme::Dagon => "dagon",
        PartitionScheme::Cone => "cone",
        PartitionScheme::PlacementDriven => "pdp",
    };
    let params = RunParams {
        scheme: scheme.to_string(),
        placer: flow_options(args).placer.backend.name().to_string(),
        layers: args.layers,
        target_utilization: args.util,
        ks: ks.to_vec(),
        optimize: args.optimize,
    };
    let record = RunRecord::from_sweep(&file_stem(&args.input), fnv1a64(&bytes), params, rows);
    let path = record
        .append(std::path::Path::new(dir))
        .map_err(|e| format!("cannot append to ledger {dir}: {e}"))?;
    println!("ledger: {}", path.display());
    Ok(())
}

/// `casyn diff <runA.json> <runB.json>`: loads two ledger records and
/// compares them — stable quality metrics exactly, wall-clock and
/// allocation inside a tolerance band. Exits non-zero on stable deltas,
/// so CI can use it as a determinism gate.
fn run_diff_command(args: &Args) -> Result<(), String> {
    let a = RunRecord::load(std::path::Path::new(&args.input))
        .map_err(|e| format!("{}: {e}", args.input))?;
    let b = RunRecord::load(std::path::Path::new(&args.input2))
        .map_err(|e| format!("{}: {e}", args.input2))?;
    let tol = match args.tolerance {
        Some(ratio) => DiffTolerance { ratio, ..Default::default() },
        None => DiffTolerance::default(),
    };
    let d = diff_records(&a, &b, &tol);
    print!("{}", format_diff(&file_stem(&args.input), &file_stem(&args.input2), &d));
    if !d.is_clean() {
        return Err(format!("{} stable delta(s) between the two runs", d.deltas.len()));
    }
    Ok(())
}

/// The manifest fallbacks this CLI invocation implies (`--ks`, `--util`,
/// `--layers`, `--optimize`, `--placer` become the per-job defaults).
fn manifest_defaults(args: &Args) -> ManifestDefaults {
    ManifestDefaults {
        ks: args.ks.clone(),
        util: args.util,
        layers: args.layers,
        optimize: args.optimize,
        placer: args.placer,
    }
}

/// Reads a previous batch report or checkpoint and returns the job
/// documents already completed ok, keyed by `(name, design)`.
fn load_resume(path: &str) -> Result<HashMap<(String, String), JsonValue>, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let doc = JsonValue::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let schema = doc.get("schema").and_then(|v| v.as_str()).unwrap_or("");
    if schema != "casyn.batch.v1" && schema != "casyn.checkpoint.v1" {
        return Err(format!(
            "{path}: schema {schema:?} is not resumable \
             (expected casyn.batch.v1 or casyn.checkpoint.v1)"
        ));
    }
    let mut done = HashMap::new();
    if let Some(jobs) = doc.get("jobs").and_then(|v| v.as_array()) {
        for j in jobs {
            if j.get("status").and_then(|v| v.as_str()) != Some("ok") {
                continue;
            }
            let name = j.get("name").and_then(|v| v.as_str());
            let design = j.get("design").and_then(|v| v.as_str());
            if let (Some(name), Some(design)) = (name, design) {
                done.insert((name.to_string(), design.to_string()), j.clone());
            }
        }
    }
    Ok(done)
}

/// One per-job entry of a `casyn.batch.v1` / `casyn.checkpoint.v1` doc.
#[allow(clippy::too_many_arguments)]
fn job_doc(
    name: &str,
    design: &str,
    status: &str,
    degraded: bool,
    attempts: u32,
    wall_ms: f64,
    error: Option<&FlowError>,
    rows: Vec<JsonValue>,
    trace_path: Option<&str>,
) -> JsonValue {
    let mut doc = vec![
        ("name".into(), JsonValue::Str(name.into())),
        ("design".into(), JsonValue::Str(design.into())),
        ("status".into(), JsonValue::Str(status.into())),
        ("degraded".into(), JsonValue::Bool(degraded)),
        ("attempts".into(), JsonValue::Number(attempts as f64)),
        ("wall_ms".into(), JsonValue::Number(wall_ms)),
    ];
    if let Some(e) = error {
        doc.push(("error".into(), e.to_json()));
    }
    if let Some(p) = trace_path {
        doc.push(("trace_path".into(), JsonValue::Str(p.into())));
    }
    doc.push(("rows".into(), JsonValue::Array(rows)));
    JsonValue::object(doc)
}

fn finished_job_doc(m: &ManifestJob, jr: &BatchJobReport, trace_path: Option<&str>) -> JsonValue {
    match &jr.outcome {
        Ok(s) => job_doc(
            &m.name,
            &m.design,
            "ok",
            s.degraded,
            jr.attempts,
            jr.wall_ms,
            None,
            s.rows.iter().map(k_row_json).collect(),
            trace_path,
        ),
        Err(e) => job_doc(
            &m.name,
            &m.design,
            "error",
            false,
            jr.attempts,
            jr.wall_ms,
            Some(e),
            Vec::new(),
            trace_path,
        ),
    }
}

fn load_error_doc(m: &ManifestJob, e: &str) -> JsonValue {
    let error = FlowError::bad_input(Stage::Batch, e.to_string());
    job_doc(&m.name, &m.design, "error", false, 0, 0.0, Some(&error), Vec::new(), None)
}

/// Atomically replaces `path` with `doc` through
/// [`casyn_flow::write_atomic`] (write to a temp file, fsync, rename),
/// so a batch killed mid-checkpoint never leaves a truncated report.
fn write_report_file(path: &str, doc: &JsonValue) -> Result<(), String> {
    casyn_flow::write_atomic(std::path::Path::new(path), doc.to_string_pretty().as_bytes())
        .map_err(|e| format!("cannot write {path}: {e}"))
}

/// When `--trace-out` names a directory (batch only), per-job trace files
/// are written there instead of one combined file.
fn trace_dir(args: &Args) -> Option<&str> {
    let p = args.trace_out.as_deref()?;
    (args.command == "batch" && (p.ends_with('/') || std::path::Path::new(p).is_dir())).then_some(p)
}

/// Writes the drained span timeline behind `--trace-out` (Chrome
/// trace-event format) and `--spans-out` (casyn.trace.v1). The Chrome
/// file is skipped in batch directory mode — per-job files already hold
/// those events.
fn write_traces(args: &Args, events: &[obs::trace::TraceEvent]) -> Result<(), String> {
    if let Some(path) = &args.spans_out {
        fs::write(path, obs::trace::to_trace_json(events).to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.trace_out {
        if trace_dir(args).is_none() {
            fs::write(path, obs::trace::to_chrome_trace(events).to_string_pretty())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

/// Slices one batch job's events out of the full timeline: everything on
/// the `batch.job` span's worker track inside its interval. Jobs on one
/// worker run sequentially, so interval containment is unambiguous.
fn job_trace_events(
    events: &[obs::trace::TraceEvent],
    span: &obs::trace::TraceEvent,
) -> Vec<obs::trace::TraceEvent> {
    let end = span.start_us + span.dur_us;
    events
        .iter()
        .filter(|e| e.thread == span.thread && e.start_us >= span.start_us && e.start_us <= end)
        .cloned()
        .collect()
}

/// Batch directory mode: writes `dir/<job>.trace.json` (Chrome format)
/// for every `batch.job` span in the timeline and returns job → path.
fn write_job_traces(
    dir: &str,
    events: &[obs::trace::TraceEvent],
) -> Result<HashMap<String, String>, String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let mut paths = HashMap::new();
    for span in
        events.iter().filter(|e| e.kind == obs::trace::EventKind::Span && e.name == "batch.job")
    {
        let Some(job) = span.attrs.iter().find_map(|(k, v)| match v {
            obs::trace::AttrValue::Str(s) if k == "job" => Some(s.clone()),
            _ => None,
        }) else {
            continue;
        };
        let sub = job_trace_events(events, span);
        let path = format!("{}/{job}.trace.json", dir.trim_end_matches('/'));
        fs::write(&path, obs::trace::to_chrome_trace(&sub).to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        paths.insert(job, path);
    }
    Ok(paths)
}

/// Writes a `casyn.crash.v1` reproducer bundle for one failed batch job.
fn write_crash_bundle(
    dir: &str,
    m: &ManifestJob,
    jr: &BatchJobReport,
    fault_plan: Option<String>,
) -> Result<String, String> {
    fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
    let error = match &jr.outcome {
        Err(e) => e.to_json(),
        Ok(_) => JsonValue::Null,
    };
    let mut doc = vec![
        ("schema".into(), JsonValue::Str("casyn.crash.v1".into())),
        ("name".into(), JsonValue::Str(m.name.clone())),
        ("design".into(), JsonValue::Str(m.design.clone())),
        ("error".into(), error),
        ("attempts".into(), JsonValue::Number(jr.attempts as f64)),
        ("ks".into(), JsonValue::Array(m.ks.iter().map(|&k| JsonValue::Number(k)).collect())),
        ("util".into(), JsonValue::Number(m.util)),
        ("layers".into(), JsonValue::Number(m.layers as f64)),
        ("optimize".into(), JsonValue::Bool(m.optimize)),
    ];
    if let Some(p) = fault_plan {
        doc.push(("fault_plan".into(), JsonValue::Str(p)));
    }
    let path = format!("{dir}/{}.crash.json", m.name);
    fs::write(&path, JsonValue::object(doc).to_string_pretty())
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(path)
}

/// Where a manifest entry's result comes from.
enum Slot {
    /// Runs in this batch, at this index into the `BatchJob` list.
    Run(usize),
    /// Completed ok in a `--resume` report; its document is reused.
    Resumed(JsonValue),
    /// Failed before the flow could start (bad path, parse error, ...).
    LoadError(String),
}

/// `casyn batch <manifest.json>`: loads every design, fans the jobs out
/// over the pool, prints a per-job report (one job's failure never takes
/// down the batch) and optionally writes it as `casyn.batch.v1` JSON.
/// While the batch runs, `--out` holds a `casyn.checkpoint.v1` document
/// updated after every finished job; `--resume` skips jobs a previous
/// report already completed.
fn run_batch_command(args: &Args, pool: &Pool) -> Result<(), String> {
    let text =
        fs::read_to_string(&args.input).map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let manifest = parse_manifest(&text, &manifest_defaults(args))?;
    let resumed = match &args.resume {
        Some(path) => load_resume(path)?,
        None => HashMap::new(),
    };
    // load designs up front; a bad path, parse error or bad fault plan
    // fails its row, not the batch
    let mut jobs: Vec<BatchJob> = Vec::new();
    let mut job_manifest: Vec<usize> = Vec::new(); // job index → manifest index
    let mut slots: Vec<Slot> = Vec::new(); // manifest order
    for m in &manifest {
        if let Some(doc) = resumed.get(&(m.name.clone(), m.design.clone())) {
            slots.push(Slot::Resumed(doc.clone()));
            continue;
        }
        let plan_spec = m
            .fault_plan
            .clone()
            .or_else(|| m.inject_panic.then(|| "decompose:panic:1".to_string()));
        let loaded = m.load_network().and_then(|(network, _raw)| {
            let fault = match &plan_spec {
                Some(spec) => Some(parse_fault_plan(spec)?),
                None => args.fault_plan.as_ref().map(|p| p.fresh()),
            };
            Ok((network, fault))
        });
        match loaded {
            Ok((network, fault)) => {
                let mut opts = m.flow_options(args.validate);
                opts.fault = fault;
                job_manifest.push(slots.len());
                slots.push(Slot::Run(jobs.len()));
                jobs.push(BatchJob {
                    name: m.name.clone(),
                    network,
                    ks: m.ks.clone(),
                    opts,
                    deadline: m.deadline_ms.map(|ms| std::time::Duration::from_secs_f64(ms / 1e3)),
                });
            }
            Err(e) => slots.push(Slot::LoadError(e)),
        }
    }
    let num_resumed = slots.iter().filter(|s| matches!(s, Slot::Resumed(_))).count();
    println!(
        "batch: {} jobs ({} loadable, {} resumed) on {} workers",
        manifest.len(),
        jobs.len(),
        num_resumed,
        pool.workers()
    );
    // Incremental checkpoint: every finished job's document lands in
    // `--out` (as casyn.checkpoint.v1) so a killed batch can --resume.
    // Resumed and load-failed rows are part of the checkpoint up front.
    let checkpoint: Mutex<Vec<Option<JsonValue>>> = Mutex::new(
        manifest
            .iter()
            .zip(&slots)
            .map(|(m, slot)| match slot {
                Slot::Run(_) => None,
                Slot::Resumed(doc) => Some(doc.clone()),
                Slot::LoadError(e) => Some(load_error_doc(m, e)),
            })
            .collect(),
    );
    let bopts = BatchOptions { retries: args.retries, ..Default::default() };
    let batch = run_batch_observed(
        &jobs,
        pool,
        &bopts,
        |j| run_batch_job(j, &bopts),
        |ji, jr| {
            let mut docs = match checkpoint.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            // trace paths exist only after the batch drains the timeline;
            // the final report fills them in
            docs[job_manifest[ji]] = Some(finished_job_doc(&manifest[job_manifest[ji]], jr, None));
            if let Some(out) = &args.out {
                let done: Vec<JsonValue> = docs.iter().flatten().cloned().collect();
                let doc = JsonValue::object(vec![
                    ("schema".into(), JsonValue::Str("casyn.checkpoint.v1".into())),
                    ("jobs".into(), JsonValue::Array(done)),
                ]);
                if let Err(e) = write_report_file(out, &doc) {
                    obs::log::warn(&format!("checkpoint: {e}"));
                }
            }
        },
    );
    // drain the span timeline once the pool is quiet; in directory mode
    // every job gets its own Chrome trace file, referenced from its row
    let traced = if args.trace_out.is_some() || args.spans_out.is_some() {
        obs::trace::take_events()
    } else {
        Vec::new()
    };
    let trace_paths = match trace_dir(args) {
        Some(dir) => write_job_traces(dir, &traced)?,
        None => HashMap::new(),
    };
    // final report, in manifest order; the in-memory BatchReport is
    // authoritative for every job that ran (jobs that never started do
    // not reach the checkpoint callback)
    let mut failed = 0usize;
    let mut degraded = 0usize;
    let mut job_docs = Vec::new();
    for (m, slot) in manifest.iter().zip(&slots) {
        match slot {
            Slot::LoadError(e) => {
                failed += 1;
                println!("[{}] LOAD ERROR: {e}", m.name);
                job_docs.push(load_error_doc(m, e));
            }
            Slot::Resumed(doc) => {
                println!("[{}] resumed: already ok in a previous run", m.name);
                if doc.get("degraded").and_then(|v| v.as_bool()) == Some(true) {
                    degraded += 1;
                }
                job_docs.push(doc.clone());
            }
            Slot::Run(ji) => {
                let jr = &batch.jobs[*ji];
                match &jr.outcome {
                    Err(e) => {
                        failed += 1;
                        println!(
                            "[{}] FAILED after {} attempt(s): {e}",
                            m.name,
                            jr.attempts.max(1)
                        );
                        if let Some(dir) = &args.crash_dir {
                            let plan = jobs[*ji].opts.fault.as_ref().map(|p| p.to_string());
                            match write_crash_bundle(dir, m, jr, plan) {
                                Ok(path) => println!("  crash bundle: {path}"),
                                Err(e) => eprintln!("  crash bundle failed: {e}"),
                            }
                        }
                    }
                    Ok(s) => {
                        let tag = if s.degraded {
                            degraded += 1;
                            " DEGRADED (escalated K)"
                        } else {
                            ""
                        };
                        println!(
                            "[{}] ok in {:.0} ms ({} K rows, {} attempt(s)){tag}",
                            m.name,
                            jr.wall_ms,
                            s.rows.len(),
                            jr.attempts
                        );
                        println!(
                            "  {:>10} {:>12} {:>8} {:>8} {:>8}",
                            "K", "area", "cells", "util%", "viol"
                        );
                        for e in &s.rows {
                            println!(
                                "  {:>10} {:>12.0} {:>8} {:>8.2} {:>8}",
                                e.k,
                                e.result.cell_area,
                                e.result.num_cells,
                                e.result.utilization_pct,
                                e.result.route.violations
                            );
                        }
                    }
                }
                job_docs.push(finished_job_doc(
                    m,
                    jr,
                    trace_paths.get(&m.name).map(String::as_str),
                ));
            }
        }
    }
    let ok = manifest.len() - failed;
    println!(
        "batch done: {ok} ok ({degraded} degraded), {failed} failed, wall {:.0} ms (jobs={})",
        batch.wall_ms,
        pool.workers()
    );
    if let Some(path) = &args.out {
        let doc = JsonValue::object(vec![
            ("schema".into(), JsonValue::Str("casyn.batch.v1".into())),
            ("workers".into(), JsonValue::Number(pool.workers() as f64)),
            ("wall_ms".into(), JsonValue::Number(batch.wall_ms)),
            ("jobs_ok".into(), JsonValue::Number(ok as f64)),
            ("jobs_failed".into(), JsonValue::Number(failed as f64)),
            ("jobs_degraded".into(), JsonValue::Number(degraded as f64)),
            ("jobs".into(), JsonValue::Array(job_docs)),
        ]);
        write_report_file(path, &doc)?;
        println!("wrote {path}");
    }
    write_observability(args, None)?;
    write_traces(args, &traced)?;
    if failed > 0 {
        return Err(format!("{failed} of {} batch jobs failed", manifest.len()));
    }
    Ok(())
}

/// `casyn serve`: runs the synthesis service until a `POST /shutdown`
/// drains it.
fn run_serve_command(args: &Args) -> Result<(), String> {
    let server = casyn_serve::Server::start(casyn_serve::ServeConfig {
        addr: args.listen.clone(),
        workers: args.jobs.unwrap_or(0),
        queue_capacity: args.queue_cap,
        retries: args.retries,
        state_dir: args.state_dir.as_ref().map(std::path::PathBuf::from),
        mem_limit_bytes: args.mem_limit,
        result_wait_secs: args.result_wait,
        io_fault: args.io_fault_plan.as_ref().map(|p| p.fresh()),
        ..Default::default()
    })?;
    println!("casyn-serve listening on {}", server.endpoint());
    server.wait()
}

/// `casyn submit <manifest.json> --server h:p`: submits a batch manifest
/// to a running service and waits for every job's result.
fn run_submit_command(args: &Args) -> Result<(), String> {
    let addr = args.server.as_deref().ok_or("submit needs --server host:port")?;
    let text =
        fs::read_to_string(&args.input).map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let (status, doc) = casyn_serve::request_json(addr, "POST", "/jobs", Some(&text))?;
    if status != 202 {
        let msg = doc.get("error").and_then(|v| v.as_str()).unwrap_or("unknown error");
        return Err(format!("submit rejected ({status}): {msg}"));
    }
    let jobs =
        doc.get("jobs").and_then(|v| v.as_array()).ok_or("malformed submit response")?.to_vec();
    let mut failed = 0usize;
    for j in &jobs {
        let id = j.get("id").and_then(|v| v.as_f64()).unwrap_or(-1.0) as i64;
        let name = j.get("name").and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let cache = j.get("cache").and_then(|v| v.as_str()).unwrap_or("?").to_string();
        let (_, r) =
            casyn_serve::request_json(addr, "GET", &format!("/jobs/{id}/result?wait=1"), None)?;
        let state = r.get("status").and_then(|v| v.as_str()).unwrap_or("?");
        let rows = r.get("rows").and_then(|v| v.as_array()).map_or(0, <[_]>::len);
        let wall = r.get("wall_ms").and_then(|v| v.as_f64()).unwrap_or(0.0);
        if state == "done" {
            println!("[{name}] done (cache {cache}, {rows} K rows, {wall:.0} ms)");
        } else {
            failed += 1;
            let err = r.get("error").and_then(|v| v.as_str()).unwrap_or("unknown error");
            println!("[{name}] {state}: {err}");
        }
    }
    if failed > 0 {
        return Err(format!("{failed} of {} submitted jobs failed", jobs.len()));
    }
    Ok(())
}

/// `casyn shutdown --server h:p`: asks a running service to drain.
fn run_shutdown_command(args: &Args) -> Result<(), String> {
    let addr = args.server.as_deref().ok_or("shutdown needs --server host:port")?;
    let (status, doc) = casyn_serve::request_json(addr, "POST", "/shutdown", None)?;
    if status != 200 {
        return Err(format!("shutdown rejected ({status})"));
    }
    println!("server {addr} {}", doc.get("status").and_then(|v| v.as_str()).unwrap_or("draining"));
    Ok(())
}

/// `casyn top <host:port>`: polls `GET /stats` on a running service and
/// renders the windowed telemetry as a full-screen terminal dashboard.
fn run_top_command(args: &Args) -> Result<(), String> {
    let addr = args.input.as_str();
    let mut frame = 0usize;
    loop {
        let (status, doc) = casyn_serve::request_json(addr, "GET", "/stats", None)?;
        if status != 200 {
            return Err(format!("{addr} /stats answered {status}"));
        }
        let text = format_top(&doc, addr);
        // single-snapshot mode composes with pipes and CI logs, so it
        // skips the ANSI clear that the live dashboard wants
        if args.frames != 1 {
            print!("\x1b[2J\x1b[H");
        }
        print!("{text}");
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        frame += 1;
        if args.frames != 0 && frame >= args.frames {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_secs_f64(args.interval));
    }
}

/// Renders one `casyn.stats.v1` document as the `top` dashboard. Pure
/// (document in, text out) so the layout is testable without a server.
fn format_top(doc: &JsonValue, addr: &str) -> String {
    let num = |path: &[&str]| -> Option<f64> {
        let mut v = doc;
        for p in path {
            v = v.get(p)?;
        }
        v.as_f64()
    };
    let mut out = String::new();
    let uptime = num(&["uptime_s"]).unwrap_or(0.0);
    let version = doc.get("version").and_then(|v| v.as_str()).unwrap_or("?");
    let degraded = doc.get("degraded").and_then(|v| v.as_bool()).unwrap_or(false);
    out.push_str(&format!(
        "casyn top - {addr}   up {uptime:.0} s   {version}{}\n",
        if degraded { "   DEGRADED (shed in last 10s)" } else { "" }
    ));
    let rate = |w: &str| num(&["windows", w, "serve.jobs_done", "rate_per_s"]).unwrap_or(0.0);
    out.push_str(&format!(
        "jobs/sec      10s {:>7.2}   1m {:>7.2}   5m {:>7.2}\n",
        rate("10s"),
        rate("1m"),
        rate("5m")
    ));
    // gauges: the 10s window's `last` is the freshest sampled value
    let gauge = |k: &str| num(&["windows", "10s", k, "last"]).unwrap_or(0.0);
    out.push_str(&format!(
        "queue {:>5.0}   inflight {:>4.0}   live {:>8.1} MB\n",
        gauge("serve.queue_depth"),
        gauge("serve.inflight"),
        gauge("serve.live_bytes") / (1024.0 * 1024.0)
    ));
    let delta = |k: &str| num(&["windows", "1m", k, "delta"]).unwrap_or(0.0);
    let hits = delta("serve.cache_hits");
    let computes = delta("serve.computes");
    let hit_pct = if hits + computes > 0.0 { 100.0 * hits / (hits + computes) } else { 0.0 };
    out.push_str(&format!(
        "cache hits (1m) {hit_pct:>5.1}%   shed {:>4.0}   retries {:>4.0}   failed {:>4.0}\n",
        delta("serve.shed"),
        delta("retry.attempts"),
        delta("serve.jobs_failed")
    ));
    // per-stage windowed percentiles: every *.wall_ms_hist key in the 1m
    // window is a stage timed through obs::StageTimer
    let mut stages: Vec<(String, f64, f64, f64)> = Vec::new();
    if let Some(JsonValue::Object(keys)) = doc.get("windows").and_then(|w| w.get("1m")) {
        for (k, v) in keys {
            if let Some(stage) = k.strip_suffix(".wall_ms_hist") {
                stages.push((
                    stage.to_string(),
                    v.get("p50").and_then(|x| x.as_f64()).unwrap_or(0.0),
                    v.get("p95").and_then(|x| x.as_f64()).unwrap_or(0.0),
                    v.get("p99").and_then(|x| x.as_f64()).unwrap_or(0.0),
                ));
            }
        }
    }
    if !stages.is_empty() {
        out.push_str(&format!(
            "\n{:<22} {:>9} {:>9} {:>9}   (1m, wall ms)\n",
            "stage", "p50", "p95", "p99"
        ));
        for (stage, p50, p95, p99) in &stages {
            out.push_str(&format!("{stage:<22} {p50:>9.1} {p95:>9.1} {p99:>9.1}\n"));
        }
    }
    // per-second sparklines, oldest to newest
    if let Some(JsonValue::Object(series)) = doc.get("series") {
        if !series.is_empty() {
            out.push('\n');
        }
        for (k, v) in series {
            let vals: Vec<f64> =
                v.as_array().unwrap_or(&[]).iter().filter_map(|x| x.as_f64()).collect();
            out.push_str(&format!("{k:<22} {}\n", casyn_flow::format_sparkline(&vals)));
        }
    }
    out
}

/// Latency/throughput numbers for one loadgen round.
struct LoadRound {
    wall_ms: f64,
    mean_ms: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    jobs_per_sec: f64,
    cache_hits: usize,
}

/// Submits every design once (spread across client threads) and waits
/// for all results; fails on any job failure.
fn loadgen_round(addr: &str, manifests: &[String], clients: usize) -> Result<LoadRound, String> {
    let t0 = std::time::Instant::now();
    let lat: Mutex<Vec<(f64, bool)>> = Mutex::new(Vec::new());
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|s| {
        for _ in 0..clients.min(manifests.len()) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                let Some(m) = manifests.get(i) else { return };
                let j0 = std::time::Instant::now();
                let one = || -> Result<(f64, bool), String> {
                    let (status, doc) = casyn_serve::request_json(addr, "POST", "/jobs", Some(m))?;
                    if status != 202 {
                        return Err(format!("submit rejected with {status}"));
                    }
                    let job = doc
                        .get("jobs")
                        .and_then(|v| v.as_array())
                        .and_then(|a| a.first())
                        .ok_or("malformed submit response")?;
                    let id = job.get("id").and_then(|v| v.as_f64()).unwrap_or(-1.0) as i64;
                    let hit = job.get("cache").and_then(|v| v.as_str()) == Some("hit");
                    let (_, r) = casyn_serve::request_json(
                        addr,
                        "GET",
                        &format!("/jobs/{id}/result?wait=1"),
                        None,
                    )?;
                    match r.get("status").and_then(|v| v.as_str()) {
                        Some("done") => Ok((j0.elapsed().as_secs_f64() * 1e3, hit)),
                        other => Err(format!("job ended {:?}", other.unwrap_or("unknown"))),
                    }
                };
                match one() {
                    Ok(sample) => lat.lock().unwrap().push(sample),
                    Err(e) => errors.lock().unwrap().push(e),
                }
            });
        }
    });
    let errors = errors.into_inner().unwrap();
    if let Some(e) = errors.first() {
        return Err(format!("loadgen round failed ({} jobs): {e}", errors.len()));
    }
    let lat = lat.into_inner().unwrap();
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let mean_ms = lat.iter().map(|(ms, _)| ms).sum::<f64>() / lat.len() as f64;
    // the same log2 histogram the windowed /stats percentiles use, so
    // BENCH_serve.json and a live `casyn top` agree on the math
    let mut hist = obs::Histogram::new();
    for (ms, _) in &lat {
        hist.record(*ms);
    }
    Ok(LoadRound {
        wall_ms,
        mean_ms,
        p50_ms: hist.p50(),
        p95_ms: hist.p95(),
        p99_ms: hist.p99(),
        jobs_per_sec: lat.len() as f64 / (wall_ms / 1e3),
        cache_hits: lat.iter().filter(|(_, hit)| *hit).count(),
    })
}

/// `casyn loadgen`: starts an in-process service on an ephemeral port,
/// drives it over real HTTP with concurrent clients (a cold round then a
/// warm round of identical resubmissions), and writes `BENCH_serve.json`.
fn run_loadgen_command(args: &Args) -> Result<(), String> {
    use casyn_netlist::bench::{random_pla, PlaGenConfig};
    let workers = args.jobs.unwrap_or(4);
    let server = casyn_serve::Server::start(casyn_serve::ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        queue_capacity: args.queue_cap.max(args.designs),
        ..Default::default()
    })?;
    let addr = server.endpoint();
    println!(
        "loadgen: {} designs, {} clients, {workers} workers on {addr}",
        args.designs, args.clients
    );
    // distinct seeds give distinct designs; inline sources keep the
    // exchange filesystem-free, as a remote client would be
    let manifests: Vec<String> = (0..args.designs)
        .map(|i| {
            let pla = random_pla(&PlaGenConfig {
                terms: 24,
                seed: 1000 + i as u64,
                ..Default::default()
            });
            let blif = to_blif(&pla.to_network(), &format!("lg{i}"));
            JsonValue::object(vec![(
                "jobs".into(),
                JsonValue::Array(vec![JsonValue::object(vec![
                    ("name".into(), JsonValue::Str(format!("lg{i}"))),
                    ("source".into(), JsonValue::Str(blif)),
                    ("format".into(), JsonValue::Str("blif".into())),
                    (
                        "ks".into(),
                        JsonValue::Array(vec![JsonValue::Number(0.0), JsonValue::Number(1.0)]),
                    ),
                ])]),
            )])
            .to_string_pretty()
        })
        .collect();
    let cold = loadgen_round(&addr, &manifests, args.clients)?;
    let warm = loadgen_round(&addr, &manifests, args.clients)?;
    let (_, metrics) = casyn_serve::request_json(&addr, "GET", "/metrics", None)?;
    let counter = |k: &str| -> f64 {
        metrics.get("metrics").and_then(|m| m.get(k)).and_then(|v| v.as_f64()).unwrap_or(0.0)
    };
    casyn_serve::request_json(&addr, "POST", "/shutdown", None)?;
    server.wait()?;
    let speedup = if warm.mean_ms > 0.0 { cold.mean_ms / warm.mean_ms } else { 0.0 };
    println!(
        "cold: {:.1} jobs/s (mean {:.0} ms, p50 {:.0} / p95 {:.0} / p99 {:.0})   \
         warm: {:.1} jobs/s (mean {:.1} ms, p50 {:.1} / p95 {:.1} / p99 {:.1})   speedup {speedup:.0}x",
        cold.jobs_per_sec,
        cold.mean_ms,
        cold.p50_ms,
        cold.p95_ms,
        cold.p99_ms,
        warm.jobs_per_sec,
        warm.mean_ms,
        warm.p50_ms,
        warm.p95_ms,
        warm.p99_ms
    );
    let round_doc = |r: &LoadRound| {
        JsonValue::object(vec![
            ("wall_ms".into(), JsonValue::Number(r.wall_ms)),
            ("mean_ms".into(), JsonValue::Number(r.mean_ms)),
            ("p50_ms".into(), JsonValue::Number(r.p50_ms)),
            ("p95_ms".into(), JsonValue::Number(r.p95_ms)),
            ("p99_ms".into(), JsonValue::Number(r.p99_ms)),
            ("jobs_per_sec".into(), JsonValue::Number(r.jobs_per_sec)),
            ("cache_hits".into(), JsonValue::Number(r.cache_hits as f64)),
        ])
    };
    let doc = JsonValue::object(vec![
        ("schema".into(), JsonValue::Str("casyn.bench.serve.v1".into())),
        ("workers".into(), JsonValue::Number(workers as f64)),
        ("clients".into(), JsonValue::Number(args.clients as f64)),
        ("designs".into(), JsonValue::Number(args.designs as f64)),
        ("cold".into(), round_doc(&cold)),
        ("warm".into(), round_doc(&warm)),
        ("speedup_mean".into(), JsonValue::Number(speedup)),
        (
            "cache".into(),
            JsonValue::object(vec![
                ("hits".into(), JsonValue::Number(counter("serve.cache_hits"))),
                ("computes".into(), JsonValue::Number(counter("serve.computes"))),
                ("deduped".into(), JsonValue::Number(counter("serve.deduped"))),
                ("prepare_hits".into(), JsonValue::Number(counter("serve.prepare_hits"))),
            ]),
        ),
    ]);
    let path = args.out.as_deref().unwrap_or("BENCH_serve.json");
    write_report_file(path, &doc)?;
    println!("wrote {path}");
    Ok(())
}

/// `casyn heatmap <heatmap.json>`: parses and summarizes an exported
/// congestion heat map, with line/field diagnostics on malformed input.
fn run_heatmap_command(args: &Args) -> Result<(), String> {
    let text =
        fs::read_to_string(&args.input).map_err(|e| format!("cannot read {}: {e}", args.input))?;
    let map = CongestionMap::from_json(&text).map_err(|e| format!("{}: {e}", args.input))?;
    let (h_cap, v_cap) = map.capacities();
    println!(
        "{}: {} x {} gcells of {:.2} um, capacity h {:.1} / v {:.1} tracks",
        args.input,
        map.nx(),
        map.ny(),
        map.gcell_size(),
        h_cap,
        v_cap
    );
    println!("peak congestion {:.1}%", 100.0 * map.max_util());
    print!("{}", casyn_flow::format_congestion_heatmap(&file_stem(&args.input), &map));
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.trace {
        obs::log::set_level(obs::log::Level::Debug);
    }
    if args.metrics_out.is_some() {
        obs::set_enabled(true);
    }
    if args.trace_out.is_some() || args.spans_out.is_some() {
        // span recording wants the metrics/alloc side enabled too, so the
        // spans carry peak_bytes attributes
        obs::set_enabled(true);
        obs::trace::set_enabled(true);
    }
    if args.command == "heatmap" {
        return run_heatmap_command(args);
    }
    if args.command == "diff" {
        return run_diff_command(args);
    }
    match args.command.as_str() {
        "serve" => return run_serve_command(args),
        "submit" => return run_submit_command(args),
        "shutdown" => return run_shutdown_command(args),
        "loadgen" => return run_loadgen_command(args),
        "top" => return run_top_command(args),
        _ => {}
    }
    let pool = match args.jobs {
        Some(n) => Pool::new(n),
        None => Pool::from_env(),
    };
    if args.command == "batch" {
        return run_batch_command(args, &pool);
    }
    let result = run_flow_command(args, &pool);
    if args.trace_out.is_some() || args.spans_out.is_some() {
        // written even when the flow failed: the partial timeline is most
        // useful exactly then
        write_traces(args, &obs::trace::take_events())?;
    }
    result
}

fn run_flow_command(args: &Args, pool: &Pool) -> Result<(), String> {
    let design = load_design(&args.input)?;
    let opts = flow_options(args);
    if !design.is_combinational() {
        if args.command != "map" {
            return Err(format!(
                "{} flip-flops found: only `map` supports sequential designs",
                design.latches.len()
            ));
        }
        let r = sequential_flow(&design, args.k, &opts).map_err(|e| e.to_string())?;
        println!("{}: sequential design, {} flip-flops", args.input, r.num_dffs);
        report(&r.flow, args.clock);
        println!("minimum clock period: {:.3} ns", r.min_clock_period);
        write_artifacts(args, &design.core, &r.flow)?;
        write_observability(args, Some(&r.flow))?;
        append_ledger(args, &[args.k], &[KSweepEntry { k: args.k, result: r.flow }])?;
        return Ok(());
    }
    let network = design.core;
    let prep = prepare_pool(&network, &opts, pool).map_err(|e| e.to_string())?;
    println!(
        "{}: {} base gates, die {:.0} um^2 ({} rows)",
        args.input,
        prep.base_gates,
        prep.floorplan.die_area(),
        prep.floorplan.num_rows
    );
    match args.command.as_str() {
        "map" => {
            let cost =
                if args.k == 0.0 { CostKind::Area } else { CostKind::AreaWire { k: args.k } };
            let r = full_flow(
                &prep,
                &MapOptions { scheme: args.scheme, cost, ..Default::default() },
                &opts,
            )
            .map_err(|e| e.to_string())?;
            report(&r, args.clock);
            write_artifacts(args, &network, &r)?;
            write_observability(args, Some(&r))?;
            append_ledger(args, &[args.k], &[KSweepEntry { k: args.k, result: r }])?;
        }
        // `run` is the everyday spelling: sweep the default K ladder on
        // the pool
        "sweep" | "run" => {
            println!("{:>10} {:>12} {:>8} {:>8} {:>8}", "K", "area", "cells", "util%", "viol");
            let rows = if pool.workers() > 1 {
                // Parallel rows: the metrics registry aggregates across all
                // K rows (plus the pool's exec.* keys); per-row attribution
                // needs --jobs 1. The rows themselves are bit-identical.
                let rows = k_sweep_prepared_pool(&prep, &args.ks, &opts, pool)
                    .map_err(|e| e.to_string())?;
                for e in &rows {
                    println!(
                        "{:>10} {:>12.0} {:>8} {:>8.2} {:>8}",
                        e.k,
                        e.result.cell_area,
                        e.result.num_cells,
                        e.result.utilization_pct,
                        e.result.route.violations
                    );
                }
                rows
            } else {
                let mut rows = Vec::with_capacity(args.ks.len());
                for &k in &args.ks {
                    // Per-row reset keeps the final registry dump scoped to
                    // the same (last) row as the stage telemetry in
                    // --metrics-out, instead of accumulating across rows.
                    obs::reset();
                    let r = casyn_flow::congestion_flow_prepared(&prep, k, &opts)
                        .map_err(|e| e.to_string())?;
                    println!(
                        "{:>10} {:>12.0} {:>8} {:>8.2} {:>8}",
                        k, r.cell_area, r.num_cells, r.utilization_pct, r.route.violations
                    );
                    rows.push(KSweepEntry { k, result: r });
                }
                rows
            };
            write_observability(args, rows.last().map(|e| &e.result))?;
            append_ledger(args, &args.ks, &rows)?;
        }
        "loop" => {
            let schedule = [0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0];
            let out = run_methodology_prepared(&prep, &schedule, 1.0, &opts)
                .map_err(|e| e.to_string())?;
            for s in &out.steps {
                println!(
                    "K = {:<8} peak {:>6.1}%  violations {:>6}  {}",
                    s.k,
                    100.0 * s.max_util,
                    s.violations,
                    if s.accepted { "ACCEPT" } else { "increase K" }
                );
            }
            if out.converged {
                report(&out.result, args.clock);
                write_artifacts(args, &network, &out.result)?;
                write_observability(args, Some(&out.result))?;
                // ledger the accepted K only: that row is the flow's output
                let k = out.steps.iter().find(|s| s.accepted).map_or(0.0, |s| s.k);
                append_ledger(args, &[k], &[KSweepEntry { k, result: out.result }])?;
            } else {
                println!("did not converge: relax the floorplan or resynthesize");
                write_observability(args, None)?;
            }
        }
        other => return Err(format!("unknown command: {other}")),
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        return usage();
    }
    match parse_args(&argv) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_map_defaults() {
        let a = parse_args(&sv(&["map", "x.pla"])).unwrap();
        assert_eq!(a.command, "map");
        assert_eq!(a.input, "x.pla");
        assert_eq!(a.k, 0.5);
        assert_eq!(a.scheme, PartitionScheme::PlacementDriven);
        assert!(!a.optimize);
        assert!(!a.validate);
        assert_eq!(a.retries, 0);
        assert!(a.resume.is_none() && a.fault_plan.is_none() && a.crash_dir.is_none());
    }

    #[test]
    fn parse_options() {
        let a = parse_args(&sv(&[
            "sweep",
            "y.blif",
            "--ks",
            "0,0.5, 2",
            "--scheme",
            "cone",
            "--util",
            "0.5",
            "--layers",
            "4",
            "--optimize",
            "--clock",
            "10.5",
        ]))
        .unwrap();
        assert_eq!(a.ks, vec![0.0, 0.5, 2.0]);
        assert_eq!(a.scheme, PartitionScheme::Cone);
        assert_eq!(a.util, 0.5);
        assert_eq!(a.layers, 4);
        assert!(a.optimize);
        assert_eq!(a.clock, Some(10.5));
    }

    #[test]
    fn parse_observability_flags() {
        let a = parse_args(&sv(&[
            "map",
            "x.pla",
            "--metrics-out",
            "m.json",
            "--heatmap",
            "h.json",
            "--trace",
        ]))
        .unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(a.heatmap.as_deref(), Some("h.json"));
        assert!(a.trace);
        let b = parse_args(&sv(&["map", "x.pla"])).unwrap();
        assert!(b.metrics_out.is_none() && b.heatmap.is_none() && !b.trace);
        assert!(parse_args(&sv(&["map", "x.pla", "--metrics-out"])).is_err());
    }

    #[test]
    fn parse_trace_out_flags() {
        let a = parse_args(&sv(&[
            "run",
            "x.pla",
            "--trace-out",
            "t.json",
            "--spans-out",
            "s.json",
            "--jobs",
            "2",
        ]))
        .unwrap();
        assert_eq!(a.command, "run");
        assert_eq!(a.trace_out.as_deref(), Some("t.json"));
        assert_eq!(a.spans_out.as_deref(), Some("s.json"));
        let b = parse_args(&sv(&["map", "x.pla"])).unwrap();
        assert!(b.trace_out.is_none() && b.spans_out.is_none());
        assert!(parse_args(&sv(&["map", "x.pla", "--trace-out"])).is_err());
        // directory mode only applies to batch
        let c = parse_args(&sv(&["batch", "m.json", "--trace-out", "traces/"])).unwrap();
        assert_eq!(trace_dir(&c), Some("traces/"));
        let d = parse_args(&sv(&["sweep", "x.pla", "--trace-out", "traces/"])).unwrap();
        assert_eq!(trace_dir(&d), None);
    }

    #[test]
    fn parse_fault_tolerance_flags() {
        let a = parse_args(&sv(&[
            "batch",
            "m.json",
            "--validate",
            "--retries",
            "2",
            "--resume",
            "old.json",
            "--fault-plan",
            "map:panic:1,route:corrupt:2,seed=7",
            "--crash-dir",
            "crashes",
        ]))
        .unwrap();
        assert!(a.validate);
        assert_eq!(a.retries, 2);
        assert_eq!(a.resume.as_deref(), Some("old.json"));
        let plan = a.fault_plan.unwrap();
        assert_eq!(plan.specs().len(), 2);
        assert_eq!(plan.seed(), 7);
        assert_eq!(a.crash_dir.as_deref(), Some("crashes"));
    }

    #[test]
    fn parse_rejects_bad_fault_plans() {
        // unknown stage names fail up front, not silently at run time
        let e = parse_args(&sv(&["map", "x.pla", "--fault-plan", "warp:panic:1"])).unwrap_err();
        assert!(e.contains("unknown stage") && e.contains("warp"), "got: {e}");
        assert!(parse_args(&sv(&["map", "x.pla", "--fault-plan", "map:explode"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--fault-plan"])).is_err());
        assert!(parse_args(&sv(&["batch", "m.json", "--retries", "-1"])).is_err());
    }

    #[test]
    fn parse_service_flags() {
        // serve/shutdown/loadgen take no input positional
        let a =
            parse_args(&sv(&["serve", "--listen", "0.0.0.0:9000", "--queue-cap", "8"])).unwrap();
        assert_eq!(a.command, "serve");
        assert_eq!(a.listen, "0.0.0.0:9000");
        assert_eq!(a.queue_cap, 8);
        let b = parse_args(&sv(&["shutdown", "--server", "127.0.0.1:7878"])).unwrap();
        assert_eq!(b.server.as_deref(), Some("127.0.0.1:7878"));
        let c = parse_args(&sv(&["loadgen", "--clients", "4", "--designs", "9"])).unwrap();
        assert_eq!((c.clients, c.designs), (4, 9));
        // defaults
        let d = parse_args(&sv(&["serve"])).unwrap();
        assert_eq!(d.listen, "127.0.0.1:7878");
        assert_eq!((d.queue_cap, d.clients, d.designs), (64, 2, 6));
        assert!(d.server.is_none());
        // submit still requires an input manifest; zero clients/designs rejected
        assert!(parse_args(&sv(&["submit", "--server", "h:1"])).is_err());
        assert!(parse_args(&sv(&["loadgen", "--clients", "0"])).is_err());
        assert!(parse_args(&sv(&["loadgen", "--designs", "0"])).is_err());
    }

    #[test]
    fn parse_top_flags() {
        let a = parse_args(&sv(&["top", "127.0.0.1:7878", "--interval", "0.5", "--frames", "3"]))
            .unwrap();
        assert_eq!(a.command, "top");
        assert_eq!(a.input, "127.0.0.1:7878");
        assert_eq!(a.interval, 0.5);
        assert_eq!(a.frames, 3);
        // defaults: 1 s refresh, run until interrupted
        let d = parse_args(&sv(&["top", "h:1"])).unwrap();
        assert_eq!((d.interval, d.frames), (1.0, 0));
        // the address positional is required, the interval must be positive
        let e = parse_args(&sv(&["top"])).unwrap_err();
        assert!(e.contains("server address"), "got: {e}");
        assert!(parse_args(&sv(&["top", "h:1", "--interval", "0"])).is_err());
        assert!(parse_args(&sv(&["top", "h:1", "--interval", "nope"])).is_err());
    }

    #[test]
    fn format_top_renders_synthetic_stats() {
        let win = |entries: Vec<(&str, JsonValue)>| {
            JsonValue::object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
        };
        let counter = |delta: f64, rate: f64| {
            win(vec![("delta", JsonValue::Number(delta)), ("rate_per_s", JsonValue::Number(rate))])
        };
        let doc = win(vec![
            ("schema", JsonValue::Str("casyn.stats.v1".into())),
            ("now_s", JsonValue::Number(90.0)),
            ("uptime_s", JsonValue::Number(90.0)),
            ("version", JsonValue::Str("0.1.0+gdeadbee".into())),
            ("degraded", JsonValue::Bool(true)),
            (
                "windows",
                win(vec![
                    (
                        "10s",
                        win(vec![
                            ("serve.jobs_done", counter(15.0, 1.5)),
                            (
                                "serve.queue_depth",
                                win(vec![
                                    ("last", JsonValue::Number(4.0)),
                                    ("min", JsonValue::Number(0.0)),
                                    ("max", JsonValue::Number(6.0)),
                                ]),
                            ),
                        ]),
                    ),
                    (
                        "1m",
                        win(vec![
                            ("serve.jobs_done", counter(30.0, 0.5)),
                            ("serve.cache_hits", counter(3.0, 0.05)),
                            ("serve.computes", counter(9.0, 0.15)),
                            (
                                "flow.map.wall_ms_hist",
                                win(vec![
                                    ("count", JsonValue::Number(30.0)),
                                    ("p50", JsonValue::Number(12.0)),
                                    ("p95", JsonValue::Number(30.0)),
                                    ("p99", JsonValue::Number(41.0)),
                                ]),
                            ),
                        ]),
                    ),
                    ("5m", win(vec![("serve.jobs_done", counter(30.0, 0.1))])),
                ]),
            ),
            (
                "series",
                win(vec![(
                    "serve.jobs_done",
                    JsonValue::Array(vec![
                        JsonValue::Number(0.0),
                        JsonValue::Number(2.0),
                        JsonValue::Number(4.0),
                    ]),
                )]),
            ),
        ]);
        let text = format_top(&doc, "127.0.0.1:7878");
        assert!(text.contains("casyn top - 127.0.0.1:7878"), "got:\n{text}");
        assert!(text.contains("up 90 s") && text.contains("0.1.0+gdeadbee"), "got:\n{text}");
        assert!(text.contains("DEGRADED"), "got:\n{text}");
        // window rates land in the jobs/sec row in 10s/1m/5m order
        assert!(text.contains("10s    1.50   1m    0.50   5m    0.10"), "got:\n{text}");
        assert!(text.contains("queue     4"), "got:\n{text}");
        // 3 hits of 12 outcomes in the 1m window
        assert!(text.contains("cache hits (1m)  25.0%"), "got:\n{text}");
        // the stage table strips the histogram suffix
        assert!(text.contains("flow.map") && !text.contains("wall_ms_hist"), "got:\n{text}");
        assert!(text.contains("12.0") && text.contains("30.0") && text.contains("41.0"));
        // the sparkline row renders one glyph per sample
        let spark = text.lines().find(|l| l.starts_with("serve.jobs_done")).unwrap();
        assert_eq!(spark.split_whitespace().last().unwrap().chars().count(), 3, "got: {spark}");
        // a degraded=false doc drops the banner
        let calm = win(vec![("degraded", JsonValue::Bool(false))]);
        assert!(!format_top(&calm, "h:1").contains("DEGRADED"));
    }

    #[test]
    fn parse_durability_flags() {
        let a = parse_args(&sv(&[
            "serve",
            "--state-dir",
            "/tmp/casyn-state",
            "--mem-limit",
            "512m",
            "--result-wait",
            "30",
            "--io-fault-plan",
            "wal:torn_write:2,cache:disk_full,conn:conn_drop:3",
        ]))
        .unwrap();
        assert_eq!(a.state_dir.as_deref(), Some("/tmp/casyn-state"));
        assert_eq!(a.mem_limit, 512 << 20);
        assert_eq!(a.result_wait, 30);
        assert_eq!(a.io_fault_plan.as_ref().unwrap().specs().len(), 3);
        // defaults: durability off, 600 s result wait
        let d = parse_args(&sv(&["serve"])).unwrap();
        assert!(d.state_dir.is_none() && d.io_fault_plan.is_none());
        assert_eq!((d.mem_limit, d.result_wait), (0, 600));
        // suffix parsing covers k/g and plain bytes
        assert_eq!(parse_bytes("4k").unwrap(), 4096);
        assert_eq!(parse_bytes("1g").unwrap(), 1 << 30);
        assert_eq!(parse_bytes("123").unwrap(), 123);
        assert!(parse_bytes("lots").is_err());
        // flow stages are not I/O stages: the plan is rejected up front
        let e = parse_args(&sv(&["serve", "--io-fault-plan", "map:torn_write"])).unwrap_err();
        assert!(e.contains("expected wal, cache or conn"), "got: {e}");
        // and the generic --fault-plan still rejects the I/O stages
        assert!(parse_args(&sv(&["map", "x.pla", "--fault-plan", "wal:torn_write"])).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&sv(&["map"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--scheme", "bogus"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--k"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--wat"])).is_err());
    }

    #[test]
    fn parse_jobs_and_out() {
        let a =
            parse_args(&sv(&["batch", "m.json", "--jobs", "4", "--out", "report.json"])).unwrap();
        assert_eq!(a.jobs, Some(4));
        assert_eq!(a.out.as_deref(), Some("report.json"));
        let b = parse_args(&sv(&["sweep", "x.pla"])).unwrap();
        assert!(b.jobs.is_none() && b.out.is_none());
        assert!(parse_args(&sv(&["batch", "m.json", "--jobs", "0"])).is_err());
        assert!(parse_args(&sv(&["batch", "m.json", "--jobs", "-1"])).is_err());
        assert!(parse_args(&sv(&["batch", "m.json", "--jobs"])).is_err());
    }

    #[test]
    fn parse_diff_positionals() {
        let a = parse_args(&sv(&["diff", "runs/a.json", "runs/b.json"])).unwrap();
        assert_eq!(a.command, "diff");
        assert_eq!(a.input, "runs/a.json");
        assert_eq!(a.input2, "runs/b.json");
        let b = parse_args(&sv(&["diff", "a.json", "b.json", "--tolerance", "2.5"])).unwrap();
        assert_eq!(b.tolerance, Some(2.5));
        // diff needs exactly two records; other commands still take one
        assert!(parse_args(&sv(&["diff", "a.json"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "y.pla"])).is_err());
        assert!(parse_args(&sv(&["diff", "a.json", "b.json", "--tolerance", "-1"])).is_err());
    }

    #[test]
    fn parse_audit_and_ledger_flags() {
        let a = parse_args(&sv(&[
            "run",
            "x.pla",
            "--ledger",
            "runs",
            "--route-out",
            "route.json",
            "--audit-out",
            "audit.json",
            "--snapshot-stride",
            "4",
        ]))
        .unwrap();
        assert_eq!(a.ledger.as_deref(), Some("runs"));
        assert_eq!(a.route_out.as_deref(), Some("route.json"));
        assert_eq!(a.audit_out.as_deref(), Some("audit.json"));
        assert_eq!(a.snapshot_stride, 4);
        let b = parse_args(&sv(&["map", "x.pla"])).unwrap();
        assert!(b.ledger.is_none() && b.route_out.is_none() && b.audit_out.is_none());
        assert_eq!(b.snapshot_stride, 0);
        assert!(parse_args(&sv(&["map", "x.pla", "--snapshot-stride"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--snapshot-stride", "x"])).is_err());
    }

    #[test]
    fn parse_placer_flag() {
        let a = parse_args(&sv(&["run", "x.pla", "--placer", "bisect"])).unwrap();
        assert_eq!(a.placer, Some(PlacerBackend::Bisect));
        assert_eq!(flow_options(&a).placer.backend, PlacerBackend::Bisect);
        let b = parse_args(&sv(&["run", "x.pla", "--placer", "k-way"])).unwrap();
        assert_eq!(b.placer, Some(PlacerBackend::KWay));
        // unset leaves the FlowOptions default (kway unless CASYN_PLACER says
        // otherwise) untouched
        let c = parse_args(&sv(&["run", "x.pla"])).unwrap();
        assert!(c.placer.is_none());
        let e = parse_args(&sv(&["run", "x.pla", "--placer", "annealing"])).unwrap_err();
        assert!(e.contains("annealing"), "got: {e}");
        assert!(parse_args(&sv(&["run", "x.pla", "--placer"])).is_err());
    }

    #[test]
    fn manifest_defaults_follow_cli_flags() {
        // manifest parsing itself lives in casyn-flow; the CLI's job is
        // mapping its flags onto the per-job fallbacks
        let a = parse_args(&sv(&[
            "batch",
            "m.json",
            "--ks",
            "0,2",
            "--util",
            "0.5",
            "--layers",
            "4",
            "--optimize",
            "--placer",
            "bisect",
        ]))
        .unwrap();
        let d = manifest_defaults(&a);
        assert_eq!(d.ks, vec![0.0, 2.0]);
        assert_eq!(d.util, 0.5);
        assert_eq!(d.layers, 4);
        assert!(d.optimize);
        assert_eq!(d.placer, Some(PlacerBackend::Bisect));
        let jobs =
            parse_manifest(r#"[{"design": "a.pla", "placer": "kway"}, {"design": "b.pla"}]"#, &d)
                .unwrap();
        assert_eq!(jobs[0].placer, Some(PlacerBackend::KWay));
        assert_eq!(jobs[1].placer, Some(PlacerBackend::Bisect));
        assert_eq!(jobs[1].ks, vec![0.0, 2.0]);
        let plain = manifest_defaults(&parse_args(&sv(&["batch", "m.json"])).unwrap());
        assert_eq!(plain.ks, ManifestDefaults::default().ks);
        assert_eq!(plain.util, ManifestDefaults::default().util);
        assert!(plain.placer.is_none());
    }

    #[test]
    fn resume_reports_reject_unknown_schemas() {
        let dir = std::env::temp_dir().join("casyn-cli-resume-schema");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("weird.json");
        fs::write(&path, r#"{"schema": "casyn.telemetry.v1", "jobs": []}"#).unwrap();
        let e = load_resume(path.to_str().unwrap()).unwrap_err();
        assert!(e.contains("not resumable"), "got: {e}");
    }

    #[test]
    fn resume_collects_only_ok_jobs() {
        let dir = std::env::temp_dir().join("casyn-cli-resume-ok");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        fs::write(
            &path,
            r#"{"schema": "casyn.checkpoint.v1", "jobs": [
                {"name": "a", "design": "a.pla", "status": "ok", "rows": []},
                {"name": "b", "design": "b.pla", "status": "error", "rows": []}
            ]}"#,
        )
        .unwrap();
        let done = load_resume(path.to_str().unwrap()).unwrap();
        assert_eq!(done.len(), 1);
        assert!(done.contains_key(&("a".to_string(), "a.pla".to_string())));
    }
}
