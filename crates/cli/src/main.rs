//! `casyn` — command-line driver for the congestion-aware synthesis flow.
//!
//! ```text
//! casyn map <design.pla|design.blif> [options]    run one full flow
//! casyn sweep <design> --ks 0,0.1,1 [options]     K sweep (paper Tables 2/4)
//! casyn loop <design> [options]                   the Fig. 3 methodology loop
//!
//! options:
//!   --k <f>            congestion factor K (map; default 0.5)
//!   --scheme <s>       dagon | cone | pdp (default pdp)
//!   --util <f>         target K=0 utilization for the derived die (default 0.611)
//!   --layers <n>       metal layers (default 3)
//!   --verilog <path>   write the mapped netlist as structural Verilog
//!   --blif <path>      write the optimized network as BLIF
//!   --dot <path>       write the mapped netlist as Graphviz DOT
//!   --optimize         run technology-independent extraction first
//!   --clock <ns>       report slack against this required time
//!   --metrics-out <p>  collect stage metrics and write telemetry JSON
//!   --heatmap <path>   write the final congestion heat map as JSON
//!   --trace            debug-level stage logging (same as CASYN_LOG=debug)
//! ```

use casyn_core::{CostKind, MapOptions, PartitionScheme};
use casyn_flow::telemetry::snapshot_json;
use casyn_flow::{
    full_flow, prepare, run_methodology_prepared, sequential_flow, FlowOptions, KSweepEntry,
};
use casyn_logic::OptimizeOptions;
use casyn_netlist::blif::{to_blif, Blif};
use casyn_netlist::dot::mapped_to_dot;
use casyn_netlist::network::Network;
use casyn_netlist::verilog::to_verilog;
use casyn_netlist::Pla;
use casyn_obs as obs;
use casyn_obs::json::JsonValue;
use std::fs;
use std::process::ExitCode;

#[derive(Debug, Clone)]
struct Args {
    command: String,
    input: String,
    k: f64,
    ks: Vec<f64>,
    scheme: PartitionScheme,
    util: f64,
    layers: usize,
    verilog: Option<String>,
    blif: Option<String>,
    dot: Option<String>,
    optimize: bool,
    clock: Option<f64>,
    metrics_out: Option<String>,
    heatmap: Option<String>,
    trace: bool,
}

fn usage() -> ExitCode {
    eprintln!("usage: casyn <map|sweep|loop> <design.pla|design.blif> [options]");
    eprintln!("run `casyn help` for the option list");
    ExitCode::FAILURE
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        command: argv.first().cloned().ok_or("missing command")?,
        input: String::new(),
        k: 0.5,
        ks: vec![0.0, 0.1, 0.5, 1.0, 5.0],
        scheme: PartitionScheme::PlacementDriven,
        util: 0.611,
        layers: 3,
        verilog: None,
        blif: None,
        dot: None,
        optimize: false,
        clock: None,
        metrics_out: None,
        heatmap: None,
        trace: false,
    };
    let mut it = argv[1..].iter();
    while let Some(a) = it.next() {
        let mut next = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--k" => args.k = next("--k")?.parse().map_err(|e| format!("--k: {e}"))?,
            "--ks" => {
                args.ks = next("--ks")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--ks: {e}")))
                    .collect::<Result<_, _>>()?
            }
            "--scheme" => {
                args.scheme = match next("--scheme")?.as_str() {
                    "dagon" => PartitionScheme::Dagon,
                    "cone" => PartitionScheme::Cone,
                    "pdp" | "placement-driven" => PartitionScheme::PlacementDriven,
                    other => return Err(format!("unknown scheme: {other}")),
                }
            }
            "--util" => args.util = next("--util")?.parse().map_err(|e| format!("--util: {e}"))?,
            "--layers" => {
                args.layers = next("--layers")?.parse().map_err(|e| format!("--layers: {e}"))?
            }
            "--verilog" => args.verilog = Some(next("--verilog")?),
            "--blif" => args.blif = Some(next("--blif")?),
            "--dot" => args.dot = Some(next("--dot")?),
            "--optimize" => args.optimize = true,
            "--metrics-out" => args.metrics_out = Some(next("--metrics-out")?),
            "--heatmap" => args.heatmap = Some(next("--heatmap")?),
            "--trace" => args.trace = true,
            "--clock" => {
                args.clock = Some(next("--clock")?.parse().map_err(|e| format!("--clock: {e}"))?)
            }
            other if args.input.is_empty() && !other.starts_with('-') => {
                args.input = other.to_string()
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    if args.command != "help" && args.input.is_empty() {
        return Err("missing input design".into());
    }
    Ok(args)
}

fn load_design(path: &str) -> Result<casyn_netlist::seq::SeqNetwork, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if path.ends_with(".blif") {
        let blif: Blif = text.parse().map_err(|e| format!("{path}: {e}"))?;
        Ok(blif.into_seq())
    } else {
        let pla: Pla = text.parse().map_err(|e| format!("{path}: {e}"))?;
        Ok(casyn_netlist::seq::SeqNetwork::combinational(pla.to_network()))
    }
}

fn flow_options(args: &Args) -> FlowOptions {
    let mut opts = FlowOptions { target_utilization: args.util, ..Default::default() };
    opts.route.layers = args.layers;
    if args.optimize {
        opts.optimize = Some(OptimizeOptions::default());
    }
    opts
}

fn report(r: &casyn_flow::FlowResult, clock: Option<f64>) {
    println!(
        "cells {:>7}   cell area {:>10.1} um^2   utilization {:>5.2}%",
        r.num_cells, r.cell_area, r.utilization_pct
    );
    println!(
        "die {:>10.0} um^2   rows {:>4}   routed wirelength {:>10.0} um",
        r.floorplan.die_area(),
        r.floorplan.num_rows,
        r.route.total_wirelength
    );
    println!(
        "routing violations {:>5}   peak congestion {:>5.1}%   iterations {}",
        r.route.violations,
        100.0 * r.route.congestion.max_util(),
        r.route.iterations
    );
    println!("critical path {} at {:.3} ns", r.sta.critical_endpoints(), r.sta.critical_arrival());
    if let Some(t) = clock {
        println!("clock {:.3} ns: WNS {:.3} ns, TNS {:.3} ns", t, r.sta.wns(t), r.sta.tns(t));
    }
}

fn write_artifacts(
    args: &Args,
    network: &Network,
    r: &casyn_flow::FlowResult,
) -> Result<(), String> {
    if let Some(path) = &args.verilog {
        fs::write(path, to_verilog(&r.netlist, "casyn_top"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.blif {
        fs::write(path, to_blif(network, "casyn_top"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.dot {
        fs::write(path, mapped_to_dot(&r.netlist, "casyn_top"))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Writes the artifacts behind `--metrics-out` and `--heatmap` from the
/// final flow result of the chosen command (the last sweep row, the
/// converged loop result, ...).
fn write_observability(args: &Args, r: Option<&casyn_flow::FlowResult>) -> Result<(), String> {
    if let Some(path) = &args.metrics_out {
        let mut doc = r
            .map(|r| r.telemetry.to_json())
            .unwrap_or_else(|| casyn_flow::FlowTelemetry::default().to_json());
        if let JsonValue::Object(entries) = &mut doc {
            entries.push(("metrics".into(), snapshot_json(&obs::snapshot())));
        }
        fs::write(path, doc.to_string_pretty()).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(path) = &args.heatmap {
        let r = r.ok_or("--heatmap needs a completed flow")?;
        fs::write(path, r.route.congestion.to_json().to_string_pretty())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.trace {
        obs::log::set_level(obs::log::Level::Debug);
    }
    if args.metrics_out.is_some() {
        obs::set_enabled(true);
    }
    let design = load_design(&args.input)?;
    let opts = flow_options(args);
    if !design.is_combinational() {
        if args.command != "map" {
            return Err(format!(
                "{} flip-flops found: only `map` supports sequential designs",
                design.latches.len()
            ));
        }
        let r = sequential_flow(&design, args.k, &opts);
        println!("{}: sequential design, {} flip-flops", args.input, r.num_dffs);
        report(&r.flow, args.clock);
        println!("minimum clock period: {:.3} ns", r.min_clock_period);
        write_artifacts(args, &design.core, &r.flow)?;
        write_observability(args, Some(&r.flow))?;
        return Ok(());
    }
    let network = design.core;
    let prep = prepare(&network, &opts);
    println!(
        "{}: {} base gates, die {:.0} um^2 ({} rows)",
        args.input,
        prep.base_gates,
        prep.floorplan.die_area(),
        prep.floorplan.num_rows
    );
    match args.command.as_str() {
        "map" => {
            let cost =
                if args.k == 0.0 { CostKind::Area } else { CostKind::AreaWire { k: args.k } };
            let r = full_flow(
                &prep,
                &MapOptions { scheme: args.scheme, cost, ..Default::default() },
                &opts,
            );
            report(&r, args.clock);
            write_artifacts(args, &network, &r)?;
            write_observability(args, Some(&r))?;
        }
        "sweep" => {
            println!("{:>10} {:>12} {:>8} {:>8} {:>8}", "K", "area", "cells", "util%", "viol");
            let mut last = None;
            for &k in &args.ks {
                // Per-row reset keeps the final registry dump scoped to the
                // same (last) row as the stage telemetry in --metrics-out,
                // instead of accumulating across all K rows.
                obs::reset();
                let r = casyn_flow::congestion_flow_prepared(&prep, k, &opts);
                println!(
                    "{:>10} {:>12.0} {:>8} {:>8.2} {:>8}",
                    k, r.cell_area, r.num_cells, r.utilization_pct, r.route.violations
                );
                last = Some(r);
            }
            write_observability(args, last.as_ref())?;
        }
        "loop" => {
            let schedule = [0.0, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0];
            let out = run_methodology_prepared(&prep, &schedule, 1.0, &opts);
            for s in &out.steps {
                println!(
                    "K = {:<8} peak {:>6.1}%  violations {:>6}  {}",
                    s.k,
                    100.0 * s.max_util,
                    s.violations,
                    if s.accepted { "ACCEPT" } else { "increase K" }
                );
            }
            if out.converged {
                report(&out.result, args.clock);
                write_artifacts(args, &network, &out.result)?;
                write_observability(args, Some(&out.result))?;
            } else {
                println!("did not converge: relax the floorplan or resynthesize");
                write_observability(args, None)?;
            }
        }
        other => return Err(format!("unknown command: {other}")),
    }
    let _: Option<KSweepEntry> = None;
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        return usage();
    }
    match parse_args(&argv) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_map_defaults() {
        let a = parse_args(&sv(&["map", "x.pla"])).unwrap();
        assert_eq!(a.command, "map");
        assert_eq!(a.input, "x.pla");
        assert_eq!(a.k, 0.5);
        assert_eq!(a.scheme, PartitionScheme::PlacementDriven);
        assert!(!a.optimize);
    }

    #[test]
    fn parse_options() {
        let a = parse_args(&sv(&[
            "sweep",
            "y.blif",
            "--ks",
            "0,0.5, 2",
            "--scheme",
            "cone",
            "--util",
            "0.5",
            "--layers",
            "4",
            "--optimize",
            "--clock",
            "10.5",
        ]))
        .unwrap();
        assert_eq!(a.ks, vec![0.0, 0.5, 2.0]);
        assert_eq!(a.scheme, PartitionScheme::Cone);
        assert_eq!(a.util, 0.5);
        assert_eq!(a.layers, 4);
        assert!(a.optimize);
        assert_eq!(a.clock, Some(10.5));
    }

    #[test]
    fn parse_observability_flags() {
        let a = parse_args(&sv(&[
            "map",
            "x.pla",
            "--metrics-out",
            "m.json",
            "--heatmap",
            "h.json",
            "--trace",
        ]))
        .unwrap();
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert_eq!(a.heatmap.as_deref(), Some("h.json"));
        assert!(a.trace);
        let b = parse_args(&sv(&["map", "x.pla"])).unwrap();
        assert!(b.metrics_out.is_none() && b.heatmap.is_none() && !b.trace);
        assert!(parse_args(&sv(&["map", "x.pla", "--metrics-out"])).is_err());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&sv(&["map"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--scheme", "bogus"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--k"])).is_err());
        assert!(parse_args(&sv(&["map", "x.pla", "--wat"])).is_err());
    }
}
