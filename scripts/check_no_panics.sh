#!/usr/bin/env bash
# Flow-stage code reachable from run_flow / k_sweep / run_batch must report
# failures through the typed FlowError spine — panic!, .unwrap() and
# .expect( are forbidden there (test modules excluded). unreachable!() is
# allowed: it marks branches the type system cannot rule out but the
# invariants do.
set -euo pipefail
cd "$(dirname "$0")/.."

files=(
  crates/flow/src/flows.rs
  crates/flow/src/sweep.rs
  crates/flow/src/batch.rs
  crates/flow/src/seq.rs
  crates/flow/src/methodology.rs
  crates/flow/src/check.rs
  crates/flow/src/error.rs
  crates/route/src/router.rs
  crates/route/src/congestion.rs
  crates/place/src/lib.rs
)

status=0
for f in "${files[@]}"; do
  # strip the trailing test module, then look for panic paths on code
  # lines (doc examples and comments are fine)
  if hits=$(sed '/#\[cfg(test)\]/,$d' "$f" \
      | grep -nE 'panic!|\.unwrap\(\)|\.expect\(' \
      | grep -vE '^[0-9]+:[[:space:]]*//'); then
    echo "forbidden panic path in $f:"
    echo "$hits"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "no-panic check: ${#files[@]} flow-stage files clean"
fi
exit $status
