#!/usr/bin/env python3
"""Validates a Prometheus text exposition (format 0.0.4).

Usage:
    check_prom.py <url-or-file> [required-family ...]

Fetches the exposition from an http(s) URL or reads it from a file,
checks every line for well-formedness (comment discipline, metric-name
syntax, parseable sample values, TYPE declared before samples, histogram
`le` buckets monotone and capped by +Inf), and asserts that each listed
required family is present with at least one sample. Exits non-zero with
a per-line diagnostic on the first structural problem, so CI fails loud.

Stdlib only — no prometheus client dependency.
"""

import re
import sys
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABELS_RE = re.compile(r'^\{([a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*",?)*\}$')
SUFFIXES = ("_bucket", "_sum", "_count", "_total")


def fail(lineno, line, why):
    sys.stderr.write(f"check_prom: line {lineno}: {why}\n  {line}\n")
    sys.exit(1)


def base_family(name):
    """Strips histogram/counter sample suffixes back to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float("nan") if text == "NaN" else float(text.replace("Inf", "inf"))
    return float(text)


def check(text, required):
    typed = {}  # family -> declared type
    sampled = set()  # family names that produced at least one sample
    buckets = {}  # (family, labels-sans-le) -> last le bound seen
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                fail(lineno, line, "comment is neither # HELP nor # TYPE")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter",
                    "gauge",
                    "histogram",
                    "summary",
                    "untyped",
                ):
                    fail(lineno, line, "bad TYPE declaration")
                if parts[2] in typed:
                    fail(lineno, line, f"family {parts[2]} TYPE declared twice")
                if parts[2] in sampled:
                    fail(lineno, line, f"TYPE for {parts[2]} after its samples")
                typed[parts[2]] = parts[3]
            continue
        m = re.match(r"^([^\s{]+)(\{[^}]*\})?\s+(\S+)(\s+\d+)?$", line)
        if not m:
            fail(lineno, line, "not `name{labels} value [timestamp]`")
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        if not NAME_RE.match(name):
            fail(lineno, line, f"bad metric name {name!r}")
        if labels and not LABELS_RE.match(labels):
            fail(lineno, line, f"bad label syntax {labels!r}")
        try:
            parse_value(value)
        except ValueError:
            fail(lineno, line, f"unparseable sample value {value!r}")
        family = base_family(name)
        # counters may be typed either on the full `x_total` name (this
        # repo's exposition) or on the bare `x` family (OpenMetrics style)
        sans_total = name[: -len("_total")] if name.endswith("_total") else name
        if family not in typed and name not in typed and sans_total not in typed:
            fail(lineno, line, f"sample for {name} has no preceding # TYPE")
        sampled.add(family)
        sampled.add(name)
        if name.endswith("_bucket"):
            le = re.search(r'le="([^"]*)"', labels)
            if not le:
                fail(lineno, line, "_bucket sample without an le label")
            bound = parse_value(le.group(1))
            key = (family, re.sub(r'le="[^"]*",?', "", labels))
            if key in buckets and not bound > buckets[key]:
                fail(lineno, line, f"le={le.group(1)} not above previous bound")
            buckets[key] = bound
    for key, bound in buckets.items():
        if bound != float("inf"):
            sys.stderr.write(f"check_prom: histogram {key[0]} lacks an +Inf bucket\n")
            sys.exit(1)
    missing = [f for f in required if f not in sampled]
    if missing:
        sys.stderr.write(f"check_prom: required families missing: {', '.join(missing)}\n")
        sys.stderr.write(f"  families present: {', '.join(sorted(typed))}\n")
        sys.exit(1)
    return len(sampled), len(typed)


def main():
    if len(sys.argv) < 2:
        sys.stderr.write(__doc__)
        sys.exit(2)
    source = sys.argv[1]
    required = sys.argv[2:] or [
        "casyn_jobs_total",
        "casyn_stage_wall_ms",
        "casyn_cache_hits_total",
    ]
    if source.startswith(("http://", "https://")):
        with urllib.request.urlopen(source, timeout=10) as r:
            text = r.read().decode("utf-8")
    else:
        with open(source, encoding="utf-8") as f:
            text = f.read()
    samples, families = check(text, required)
    print(f"check_prom: ok — {families} families, {samples} sampled names")


if __name__ == "__main__":
    main()
