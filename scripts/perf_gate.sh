#!/usr/bin/env bash
# Perf-regression gate around `cargo run -p casyn-bench --bin perf_gate`.
#
#   scripts/perf_gate.sh            compare against BENCH_baseline.json
#                                   (records a fresh baseline and soft-passes
#                                   when none is committed yet)
#   scripts/perf_gate.sh --selftest prove the gate works: a self-comparison
#                                   must pass and a 100x-deflated baseline
#                                   must trip
#
# PERF_GATE_SOFT=1 downgrades a regression to a warning.
# PERF_GATE_TOLERANCE widens the relative band (default 0.5 = +50%);
# CI uses a wide band so the committed baseline absorbs runner-generation
# variance while still catching order-of-magnitude regressions.
set -euo pipefail
cd "$(dirname "$0")/.."

BASELINE="${PERF_GATE_BASELINE:-BENCH_baseline.json}"
TOLERANCE="${PERF_GATE_TOLERANCE:-0.5}"
GATE=(cargo run --quiet --release -p casyn-bench --bin perf_gate -- --tolerance "$TOLERANCE")

if [[ "${1:-}" == "--selftest" ]]; then
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    "${GATE[@]}" --iterations 2 --out "$tmp/self.json"
    "${GATE[@]}" --iterations 2 --compare "$tmp/self.json"
    echo "perf_gate selftest: self-comparison passed"
    "${GATE[@]}" --iterations 2 --scale 0.01 --out "$tmp/deflated.json"
    if "${GATE[@]}" --iterations 2 --compare "$tmp/deflated.json"; then
        echo "perf_gate selftest: FAILED — deflated baseline did not trip" >&2
        exit 1
    fi
    echo "perf_gate selftest: deflated baseline tripped as expected"
    exit 0
fi

if [[ ! -f "$BASELINE" ]]; then
    echo "perf_gate: no $BASELINE committed yet — recording one (soft pass)"
    "${GATE[@]}" --out "$BASELINE"
    exit 0
fi

if "${GATE[@]}" --compare "$BASELINE"; then
    exit 0
elif [[ "${PERF_GATE_SOFT:-0}" == "1" ]]; then
    echo "perf_gate: regression detected but PERF_GATE_SOFT=1 — not failing the build" >&2
    exit 0
else
    exit 1
fi
