//! End-to-end tests for the synthesis service: real sockets on ephemeral
//! ports, content-addressed cache hits, request dedup, HTTP error
//! discipline, backpressure, and graceful drain.

use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::blif::to_blif;
use casyn::obs;
use casyn::obs::json::JsonValue;
use casyn::serve::{client, request_json, ServeConfig, Server};
use std::sync::Mutex;
use std::time::Instant;

/// The metrics registry is process-wide and `Server::start` enables it;
/// tests that read counter deltas must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match OBS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn start(config: ServeConfig) -> Server {
    Server::start(ServeConfig { addr: "127.0.0.1:0".into(), ..config }).unwrap()
}

/// Single-job manifest with an inline BLIF source, as a remote client
/// with no shared filesystem would send it.
fn manifest(name: &str, seed: u64, terms: usize, ks: &[f64]) -> String {
    let pla = random_pla(&PlaGenConfig { terms, seed, ..Default::default() });
    let blif = to_blif(&pla.to_network(), name);
    JsonValue::object(vec![(
        "jobs".into(),
        JsonValue::Array(vec![JsonValue::object(vec![
            ("name".into(), JsonValue::Str(name.into())),
            ("source".into(), JsonValue::Str(blif)),
            ("format".into(), JsonValue::Str("blif".into())),
            ("ks".into(), JsonValue::Array(ks.iter().map(|&k| JsonValue::Number(k)).collect())),
        ])]),
    )])
    .to_string_pretty()
}

/// Submits a manifest and returns the first job's (id, cache tag).
fn submit_one(addr: &str, body: &str) -> (i64, String) {
    let (status, doc) = request_json(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(status, 202, "submit failed: {doc:?}");
    let job = doc.get("jobs").and_then(|v| v.as_array()).and_then(|a| a.first()).unwrap();
    (
        job.get("id").and_then(|v| v.as_f64()).unwrap() as i64,
        job.get("cache").and_then(|v| v.as_str()).unwrap().to_string(),
    )
}

/// Blocks until the job is terminal and returns its result document.
fn result_wait(addr: &str, id: i64) -> JsonValue {
    let (status, doc) =
        request_json(addr, "GET", &format!("/jobs/{id}/result?wait=1"), None).unwrap();
    assert_eq!(status, 200, "result fetch failed: {doc:?}");
    doc
}

fn counter(snap: &obs::Snapshot, key: &str) -> u64 {
    snap.counter(key).unwrap_or(0)
}

#[test]
fn identical_resubmit_hits_cache_without_rerouting() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 2, ..Default::default() });
    let addr = server.endpoint();
    let m = manifest("accept", 7, 40, &[0.0, 0.5, 1.0]);

    let t0 = Instant::now();
    let (id0, cache0) = submit_one(&addr, &m);
    let r0 = result_wait(&addr, id0);
    let cold = t0.elapsed();
    assert_eq!(cache0, "miss");
    assert_eq!(r0.get("status").and_then(|v| v.as_str()), Some("done"));
    let rows0 = r0.get("rows").and_then(|v| v.as_array()).unwrap().to_vec();
    assert_eq!(rows0.len(), 3, "one row per K value");

    // the resubmit must not touch the router: zero route.iterations delta,
    // zero new computes, and at least 10x lower submit-to-result latency
    let before = obs::snapshot();
    let t1 = Instant::now();
    let (id1, cache1) = submit_one(&addr, &m);
    let r1 = result_wait(&addr, id1);
    let warm = t1.elapsed();
    let delta = obs::snapshot().delta_since(&before);

    assert_ne!(id1, id0, "resubmit is a new job record");
    assert_eq!(cache1, "hit");
    assert_eq!(r1.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(counter(&delta, "route.iterations"), 0, "cache hit re-ran the router");
    assert_eq!(counter(&delta, "serve.computes"), 0, "cache hit re-ran the flow");
    assert_eq!(counter(&delta, "serve.cache_hits"), 1);
    assert!(cold >= warm * 10, "expected >=10x speedup, got cold {cold:?} vs warm {warm:?}");

    // both jobs report identical K-sweep rows
    let rows1 = r1.get("rows").and_then(|v| v.as_array()).unwrap().to_vec();
    assert_eq!(rows0.len(), rows1.len());
    for (a, b) in rows0.iter().zip(rows1.iter()) {
        assert_eq!(
            a.get("wirelength_um").and_then(|v| v.as_f64()),
            b.get("wirelength_um").and_then(|v| v.as_f64())
        );
    }

    // the events stream is close-delimited NDJSON ending in a terminal event
    let ev =
        client::raw(&addr, &format!("GET /jobs/{id0}/events HTTP/1.1\r\nHost: t\r\n\r\n")).unwrap();
    assert_eq!(ev.status, 200);
    assert!(ev.body.contains("\"event\":\"submitted\""), "events: {}", ev.body);
    assert!(ev.body.contains("\"event\":\"done\""), "events: {}", ev.body);

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn concurrent_identical_submits_dedupe_to_one_compute() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 2, ..Default::default() });
    let addr = server.endpoint();
    let m = manifest("dedup", 11, 32, &[0.0, 1.0]);
    let before = obs::snapshot();

    let tags: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                s.spawn(|| {
                    let (id, cache) = submit_one(&addr, &m);
                    let r = result_wait(&addr, id);
                    assert_eq!(r.get("status").and_then(|v| v.as_str()), Some("done"));
                    cache
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let delta = obs::snapshot().delta_since(&before);
    assert_eq!(counter(&delta, "serve.computes"), 1, "tags: {tags:?}");
    assert_eq!(counter(&delta, "serve.jobs_done"), 4);
    assert_eq!(tags.iter().filter(|t| *t == "miss").count(), 1, "tags: {tags:?}");
    for t in &tags {
        assert!(t == "miss" || t == "dedup" || t == "hit", "unexpected tag {t}");
    }

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn http_layer_rejects_malformed_requests() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, max_body_bytes: 1024, ..Default::default() });
    let addr = server.endpoint();

    let (status, _) = request_json(&addr, "GET", "/nope", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = request_json(&addr, "GET", "/jobs/999", None).unwrap();
    assert_eq!(status, 404, "unknown job id");
    let (status, _) = request_json(&addr, "DELETE", "/jobs", None).unwrap();
    assert_eq!(status, 405, "unsupported method");
    let (status, doc) = request_json(&addr, "POST", "/jobs", Some("{not json")).unwrap();
    assert_eq!(status, 400);
    assert!(
        doc.get("error").and_then(|v| v.as_str()).unwrap().contains("manifest"),
        "error names the manifest: {doc:?}"
    );
    let (status, doc) =
        request_json(&addr, "POST", "/jobs", Some("{\"jobs\": [{\"ks\": []}]}")).unwrap();
    assert_eq!(status, 400);
    assert!(doc.get("error").and_then(|v| v.as_str()).unwrap().contains("job 0"));

    // chunked transfer encoding is rejected up front, not half-read
    let r = client::raw(
        &addr,
        "POST /jobs HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
    )
    .unwrap();
    assert_eq!(r.status, 411);

    // a body larger than the configured cap is refused before it is read
    let big = format!("{{\"pad\": \"{}\"}}", "x".repeat(4096));
    let r = client::request(&addr, "POST", "/jobs", Some(&big)).unwrap();
    assert_eq!(r.status, 413);

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn full_queue_rejects_whole_request_with_429() {
    let _guard = lock();
    // capacity 0 makes rejection deterministic regardless of worker speed
    let server = start(ServeConfig { workers: 1, queue_capacity: 0, ..Default::default() });
    let addr = server.endpoint();
    let before = obs::snapshot();

    let (status, doc) =
        request_json(&addr, "POST", "/jobs", Some(&manifest("bp", 3, 8, &[0.0]))).unwrap();
    assert_eq!(status, 429);
    assert!(doc.get("error").and_then(|v| v.as_str()).unwrap().contains("queue full"), "{doc:?}");

    // rejection is atomic: no job record was admitted
    let (status, _) = request_json(&addr, "GET", "/jobs/0", None).unwrap();
    assert_eq!(status, 404);
    let delta = obs::snapshot().delta_since(&before);
    assert_eq!(counter(&delta, "serve.rejected"), 1);
    assert_eq!(counter(&delta, "serve.queued"), 0);

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn fault_plan_jobs_fail_and_bypass_the_cache() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();
    let pla = random_pla(&PlaGenConfig { terms: 8, seed: 5, ..Default::default() });
    let body = JsonValue::object(vec![(
        "jobs".into(),
        JsonValue::Array(vec![JsonValue::object(vec![
            ("name".into(), JsonValue::Str("boom".into())),
            ("source".into(), JsonValue::Str(to_blif(&pla.to_network(), "boom"))),
            ("format".into(), JsonValue::Str("blif".into())),
            ("ks".into(), JsonValue::Array(vec![JsonValue::Number(0.0)])),
            ("fault_plan".into(), JsonValue::Str("decompose:panic:1".into())),
        ])]),
    )])
    .to_string_pretty();
    let before = obs::snapshot();

    for round in 0..2 {
        let (id, cache) = submit_one(&addr, &body);
        assert_eq!(cache, "bypass", "fault jobs must never be cached (round {round})");
        let (status, doc) =
            request_json(&addr, "GET", &format!("/jobs/{id}/result?wait=1"), None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("failed"));
        let err = doc.get("error").and_then(|v| v.as_str()).unwrap();
        assert!(err.contains("decompose"), "error names the faulted stage: {err}");
    }
    let delta = obs::snapshot().delta_since(&before);
    assert_eq!(counter(&delta, "serve.computes"), 2, "fault jobs recompute every time");
    assert_eq!(counter(&delta, "serve.jobs_failed"), 2);
    assert_eq!(counter(&delta, "serve.cache_hits"), 0);

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn shutdown_drains_queued_jobs_then_exits() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();
    let before = obs::snapshot();

    let mut ids = Vec::new();
    for i in 0..2 {
        let (id, _) = submit_one(&addr, &manifest(&format!("drain{i}"), 100 + i, 16, &[0.0]));
        ids.push(id);
    }
    let (status, doc) = request_json(&addr, "POST", "/shutdown", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("draining"));
    assert!(server.draining());
    server.wait().unwrap();

    // every admitted job reached a terminal state before the process let go
    let delta = obs::snapshot().delta_since(&before);
    let done = counter(&delta, "serve.jobs_done");
    let failed = counter(&delta, "serve.jobs_failed");
    let cancelled = counter(&delta, "serve.jobs_cancelled");
    assert_eq!(done + failed + cancelled, 2, "done {done} failed {failed} cancelled {cancelled}");
    assert_eq!(done, 2, "drain mode finishes queued work rather than dropping it");
}

#[test]
fn cancel_shutdown_final_flushes_unstarted_jobs() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();
    let before = obs::snapshot();

    // one slow-ish job per submission so the single worker develops a backlog
    for i in 0..4 {
        submit_one(&addr, &manifest(&format!("cx{i}"), 200 + i, 24, &[0.0, 1.0]));
    }
    let (status, doc) =
        request_json(&addr, "POST", "/shutdown", Some("{\"mode\": \"cancel\"}")).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("mode").and_then(|v| v.as_str()), Some("cancel"));
    server.wait().unwrap();

    // the cancel token stops unclaimed jobs, and the batch runner's final
    // flush still reports each of them exactly once
    let delta = obs::snapshot().delta_since(&before);
    let done = counter(&delta, "serve.jobs_done");
    let failed = counter(&delta, "serve.jobs_failed");
    let cancelled = counter(&delta, "serve.jobs_cancelled");
    assert_eq!(done + failed + cancelled, 4, "done {done} failed {failed} cancelled {cancelled}");
    assert!(cancelled >= 1, "expected at least one cancelled job, got {cancelled}");
}

#[test]
fn healthz_and_metrics_respond() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();

    let (status, doc) = request_json(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));

    let (id, _) = submit_one(&addr, &manifest("mx", 31, 12, &[0.0]));
    result_wait(&addr, id);
    let (status, doc) = request_json(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("casyn.metrics.v1"));
    let metrics = doc.get("metrics").unwrap();
    assert!(metrics.get("serve.submitted").and_then(|v| v.as_f64()).unwrap_or(0.0) >= 1.0);
    assert!(metrics.get("serve.inflight").is_some(), "inflight gauge exported");

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}
