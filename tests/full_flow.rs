//! Integration tests spanning the whole stack: PLA → optimization →
//! decomposition → placement → mapping → legalization → routing → STA.

use casyn::flow::{
    congestion_flow, dagon_flow, k_sweep, prepare, run_methodology, sis_flow, FlowOptions,
};
use casyn::library::corelib018;
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::network::Network;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn test_pla_network(seed: u64) -> Network {
    random_pla(&PlaGenConfig {
        inputs: 10,
        outputs: 6,
        terms: 48,
        min_literals: 3,
        max_literals: 6,
        mean_outputs_per_term: 1.5,
        seed,
    })
    .to_network()
}

/// Every flow must preserve the logic function end to end.
#[test]
fn all_flows_are_functionally_correct() {
    let net = test_pla_network(1);
    let opts = FlowOptions::default();
    let lib = corelib018();
    let mut rng = StdRng::seed_from_u64(7);
    for (name, r) in [
        ("dagon", dagon_flow(&net, &opts).unwrap()),
        ("sis", sis_flow(&net, &opts).unwrap()),
        ("k=0", congestion_flow(&net, 0.0, &opts).unwrap()),
        ("k=0.001", congestion_flow(&net, 0.001, &opts).unwrap()),
        ("k=1", congestion_flow(&net, 1.0, &opts).unwrap()),
    ] {
        for _ in 0..100 {
            let asg: Vec<bool> = (0..10).map(|_| rng.gen()).collect();
            assert_eq!(
                net.simulate_outputs(&asg),
                r.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg),
                "{name}: mismatch at {asg:?}"
            );
        }
    }
}

/// K = 0 with placement-driven partitioning must equal the DAGON minimum
/// cell area exactly (barrier-respecting covering makes the DP decompose
/// at multi-fanout vertices just as DAGON's tree cuts do).
#[test]
fn k_zero_area_equals_dagon_area() {
    let net = test_pla_network(2);
    let opts = FlowOptions::default();
    let dagon = dagon_flow(&net, &opts).unwrap();
    let k0 = congestion_flow(&net, 0.0, &opts).unwrap();
    assert!(
        (dagon.cell_area - k0.cell_area).abs() < 1e-6,
        "dagon {} vs K=0 {}",
        dagon.cell_area,
        k0.cell_area
    );
}

/// Cell area trends upward with K across a sweep (the paper's Tables 2/4
/// shape). The property is statistical — the mapper's tie-breaking under
/// wire cost can produce a small local dip for some inputs — so the
/// assertion tolerates a bounded step-to-step dip and instead requires
/// the overall trend (last row vs. first row) to be non-decreasing,
/// checked across several generated networks rather than one chosen seed.
#[test]
fn sweep_area_shape() {
    let opts = FlowOptions::default();
    for seed in [2, 3, 4] {
        let net = test_pla_network(seed);
        let rows = k_sweep(&net, &[0.0, 0.05, 1.0, 20.0], &opts).unwrap();
        for w in rows.windows(2) {
            let dip_tolerance = 0.03 * w[0].result.cell_area;
            assert!(
                w[1].result.cell_area >= w[0].result.cell_area - dip_tolerance,
                "seed {}: area dropped more than 3% with K: {} -> {}",
                seed,
                w[0].result.cell_area,
                w[1].result.cell_area
            );
        }
        let (first, last) = (&rows[0].result, &rows[rows.len() - 1].result);
        assert!(
            last.cell_area >= first.cell_area - 1e-9,
            "seed {}: area must not decrease overall: K=0 {} -> K=20 {}",
            seed,
            first.cell_area,
            last.cell_area
        );
    }
}

/// Legalized placements are legal: every cell inside the die, on a row
/// centre, no overlaps within a row.
#[test]
fn legalized_placement_is_legal() {
    let net = test_pla_network(4);
    let opts = FlowOptions::default();
    let r = congestion_flow(&net, 0.001, &opts).unwrap();
    let fp = r.floorplan;
    let mut by_row: Vec<Vec<(f64, f64)>> = vec![Vec::new(); fp.num_rows];
    for c in r.netlist.cells() {
        assert!(c.pos.x >= 0.0 && c.pos.x <= fp.die_width + 1e-6, "x outside die");
        let row = fp.row_of(c.pos.y);
        assert!(
            (c.pos.y - fp.row_y(row)).abs() < 1e-6,
            "cell not on a row centre: y = {}",
            c.pos.y
        );
        by_row[row].push((c.pos.x - c.width / 2.0, c.pos.x + c.width / 2.0));
    }
    for (row, spans) in by_row.iter_mut().enumerate() {
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in spans.windows(2) {
            assert!(w[0].1 <= w[1].0 + 1e-6, "overlap in row {row}");
        }
    }
}

/// The SIS flow (aggressive extraction) must produce fewer literals and a
/// smaller mapped area than the plain DAGON flow.
#[test]
fn sis_minimizes_area() {
    let net = test_pla_network(5);
    let opts = FlowOptions::default();
    let sis = sis_flow(&net, &opts).unwrap();
    let dagon = dagon_flow(&net, &opts).unwrap();
    assert!(sis.cell_area < dagon.cell_area);
}

/// The methodology loop reports monotone K and stops on acceptance.
#[test]
fn methodology_trace_is_consistent() {
    let net = test_pla_network(6);
    let opts = FlowOptions { target_utilization: 0.45, ..Default::default() };
    let out = run_methodology(&net, &[0.0, 0.001, 0.01], 1.0, &opts).unwrap();
    for w in out.steps.windows(2) {
        assert!(w[0].k < w[1].k);
        assert!(!w[0].accepted, "loop must stop at the first accepted step");
    }
    if out.converged {
        assert!(out.steps.last().unwrap().accepted);
    }
}

/// Prepared designs are deterministic: same network, same options, same
/// placement and floorplan.
#[test]
fn prepare_is_deterministic() {
    let net = test_pla_network(7);
    let opts = FlowOptions::default();
    let a = prepare(&net, &opts).unwrap();
    let b = prepare(&net, &opts).unwrap();
    assert_eq!(a.base_gates, b.base_gates);
    assert_eq!(a.floorplan, b.floorplan);
    assert_eq!(a.positions.len(), b.positions.len());
    for (p, q) in a.positions.iter().zip(&b.positions) {
        assert_eq!(p, q);
    }
}

/// STA arrival times must be positive and the critical PO the maximum.
#[test]
fn sta_results_are_sane() {
    let net = test_pla_network(8);
    let opts = FlowOptions::default();
    let r = congestion_flow(&net, 0.001, &opts).unwrap();
    let crit = r.sta.critical_arrival();
    assert!(crit > 0.0);
    for a in &r.sta.po_arrival {
        assert!(*a <= crit + 1e-12);
        assert!(*a > 0.0);
    }
    assert!(r.sta.critical_endpoints().contains("(in)"));
    assert!(r.sta.critical_endpoints().contains("(out)"));
}
