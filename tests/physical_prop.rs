//! Property-based tests of the physical-design substrates: placement
//! legality, legalization invariants, FM balance, router conservation.

use casyn::netlist::Point;
use casyn::place::fm::{refine, FmNet, FmProblem};
use casyn::place::instance::{PinRef, PlaceInstance, PlaceNet};
use casyn::place::{legalize_rows, place, Floorplan, PlacerOptions};
use casyn::route::{route_pin_sets, CongestionMap, RouteConfig};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = PlaceInstance> {
    (2usize..40, 1u64..500).prop_map(|(n, seed)| {
        // deterministic pseudo-random connectivity from the seed
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut inst = PlaceInstance {
            cell_width: (0..n).map(|_| 1.28 + (next() % 4) as f64 * 0.64).collect(),
            nets: Vec::new(),
        };
        let nets = n + (next() % n as u64) as usize;
        for _ in 0..nets {
            let a = (next() % n as u64) as usize;
            let b = (next() % n as u64) as usize;
            if a != b {
                inst.nets.push(PlaceNet { pins: vec![PinRef::Cell(a), PinRef::Cell(b)] });
            }
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every placed cell lies inside the die.
    #[test]
    fn placement_stays_inside_die(inst in arb_instance(), rows in 2usize..8) {
        let width = inst.total_width() * 3.0 / rows as f64 + 20.0;
        let fp = Floorplan::with_rows_and_area(rows, rows as f64 * 6.4 * width);
        let pos = place(&inst, &fp, &PlacerOptions::default());
        for p in &pos {
            prop_assert!(p.x >= -1e-9 && p.x <= fp.die_width + 1e-9);
            prop_assert!(p.y >= -1e-9 && p.y <= fp.die_height + 1e-9);
        }
    }

    /// Legalization produces row-aligned, non-overlapping, in-die cells
    /// whenever capacity suffices.
    #[test]
    fn legalization_is_legal(inst in arb_instance(), rows in 2usize..6) {
        let width = inst.total_width() * 2.0 / rows as f64 + 20.0;
        let fp = Floorplan::with_rows_and_area(rows, rows as f64 * 6.4 * width);
        let desired = place(&inst, &fp, &PlacerOptions::default());
        let out = legalize_rows(&desired, &inst.cell_width, &fp);
        prop_assert_eq!(out.overflow_cells, 0);
        let mut by_row: Vec<Vec<(f64, f64)>> = vec![Vec::new(); fp.num_rows];
        for (i, p) in out.pos.iter().enumerate() {
            let r = out.row_of[i];
            prop_assert!((p.y - fp.row_y(r)).abs() < 1e-9);
            let half = inst.cell_width[i] / 2.0;
            prop_assert!(p.x - half >= -1e-6 && p.x + half <= fp.die_width + 1e-6);
            by_row[r].push((p.x - half, p.x + half));
        }
        for spans in by_row.iter_mut() {
            spans.sort_by(|a, b| a.0.total_cmp(&b.0));
            for w in spans.windows(2) {
                prop_assert!(w[0].1 <= w[1].0 + 1e-6, "row overlap");
            }
        }
    }

    /// FM refinement never increases the cut and respects its balance
    /// bound.
    #[test]
    fn fm_never_worsens_cut(n in 4usize..32, seed in 1u64..200) {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let nets: Vec<FmNet> = (0..n * 2)
            .filter_map(|_| {
                let a = (next() % n as u64) as usize;
                let b = (next() % n as u64) as usize;
                (a != b).then(|| FmNet { cells: vec![a, b], anchor: [false, false] })
            })
            .collect();
        let problem = FmProblem { weights: vec![1.0; n], nets, balance_tol: 0.15 };
        let mut side: Vec<bool> = (0..n).map(|i| i % 2 == 0).collect();
        let before = problem.cut(&side);
        let after = refine(&problem, &mut side, 3);
        prop_assert!(after <= before, "cut worsened: {} -> {}", before, after);
        let right = side.iter().filter(|&&s| s).count() as f64;
        let max_side = (n as f64 * 0.65).max(n as f64 / 2.0 + 1.0);
        prop_assert!(right <= max_side && (n as f64 - right) <= max_side);
    }

    /// Router conservation: per-net wirelengths sum to the total, and a
    /// single 2-pin net routes at exactly its Manhattan gcell distance
    /// on an empty grid.
    #[test]
    fn router_conservation(x in 0u16..12, y in 0u16..12) {
        let fp = Floorplan::with_rows_and_area(16, 16.0 * 6.4 * 102.4);
        let cfg = RouteConfig::default();
        let a = Point::new(3.2, 3.2);
        let b = Point::new(3.2 + 6.4 * x as f64, 3.2 + 6.4 * y as f64);
        let r = route_pin_sets(&[vec![a, b]], &fp, &cfg).expect("routable pin set");
        let expect = (x as f64 + y as f64) * 6.4;
        prop_assert!((r.total_wirelength - expect).abs() < 1e-9);
        prop_assert!((r.net_wirelength.iter().sum::<f64>() - r.total_wirelength).abs() < 1e-9);
        prop_assert!(r.is_routable());
    }

    /// A congestion map survives the JSON round trip field-for-field,
    /// and re-exporting the parsed map is byte-identical (the export is
    /// a fixed point).
    #[test]
    fn congestion_map_json_roundtrip(nets in 2usize..24, seed in 1u64..500) {
        let fp = Floorplan::with_rows_and_area(10, 10.0 * 6.4 * 64.0);
        let pin_sets = random_pin_sets(nets, seed, 9, 9);
        let r = route_pin_sets(&pin_sets, &fp, &RouteConfig::default())
            .expect("routable pin sets");
        let json = r.congestion.to_json().to_string_pretty();
        let back = CongestionMap::from_json(&json).expect("roundtrip parse");
        prop_assert_eq!(back.nx(), r.congestion.nx());
        prop_assert_eq!(back.ny(), r.congestion.ny());
        prop_assert_eq!(back.capacities(), r.congestion.capacities());
        prop_assert_eq!(back.gcell_size(), r.congestion.gcell_size());
        prop_assert!((back.max_util() - r.congestion.max_util()).abs() < 1e-12);
        for y in 0..back.ny() {
            for x in 0..back.nx().saturating_sub(1) {
                prop_assert_eq!(back.h_demand(x, y), r.congestion.h_demand(x, y));
            }
        }
        for y in 0..back.ny().saturating_sub(1) {
            for x in 0..back.nx() {
                prop_assert_eq!(back.v_demand(x, y), r.congestion.v_demand(x, y));
            }
        }
        prop_assert_eq!(back.to_json().to_string_pretty(), json);
    }

    /// Overflow attribution conserves demand: on every audited boundary
    /// the blockage share plus the per-net demand shares reproduce the
    /// boundary load, and each overflow equals demand minus capacity.
    #[test]
    fn audit_shares_sum_to_boundary_demand(nets in 24usize..48, seed in 1u64..200) {
        // a 3-row channel so that many parallel nets overflow it
        let fp = Floorplan::with_rows_and_area(3, 3.0 * 6.4 * 51.2);
        let pin_sets = random_pin_sets(nets, seed, 7, 2);
        let cfg = RouteConfig { max_iters: 6, ..Default::default() };
        let r = route_pin_sets(&pin_sets, &fp, &cfg).expect("routable pin sets");
        for b in &r.audit.boundaries {
            let net_sum: f64 = b.nets.iter().map(|s| s.demand).sum();
            prop_assert!(
                (b.blockage + net_sum - b.demand).abs() < 1e-9,
                "boundary ({}, {}) demand {} != blockage {} + nets {}",
                b.x, b.y, b.demand, b.blockage, net_sum
            );
            prop_assert!((b.overflow() - (b.demand - b.capacity)).abs() < 1e-9);
            prop_assert!(b.demand > b.capacity, "audited boundary is not overflowed");
        }
    }
}

/// Seeded pseudo-random 2-pin nets on gcell centers of an `nx × ny`
/// gcell window (xorshift, same idiom as `arb_instance`).
fn random_pin_sets(nets: usize, seed: u64, nx: u64, ny: u64) -> Vec<Vec<Point>> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..nets)
        .map(|_| {
            let gx = |v: u64| 3.2 + 6.4 * (v % nx) as f64;
            let gy = |v: u64| 3.2 + 6.4 * (v % ny) as f64;
            vec![Point::new(gx(next()), gy(next())), Point::new(gx(next()), gy(next()))]
        })
        .collect()
}
