//! End-to-end fault tolerance: deterministic fault injection drives the
//! typed error spine, the stage-boundary invariant checker catches
//! corrupted intermediates, and the batch runner recovers with retry and
//! K escalation. All through the public facade, the way an application
//! would wire it.

use casyn::exec::{FaultPlan, Pool};
use casyn::flow::batch::{run_batch_job, run_batch_opts, BatchJob, BatchOptions};
use casyn::flow::{congestion_flow, FlowErrorKind, FlowOptions, Stage};
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::network::Network;

fn net(seed: u64) -> Network {
    random_pla(&PlaGenConfig {
        inputs: 9,
        outputs: 5,
        terms: 28,
        min_literals: 3,
        max_literals: 5,
        mean_outputs_per_term: 1.3,
        seed,
    })
    .to_network()
}

fn opts_with(plan: &str) -> FlowOptions {
    FlowOptions {
        validate: true,
        fault: Some(FaultPlan::parse(plan).unwrap()),
        ..Default::default()
    }
}

/// A corrupt fault at each supported stage is caught by that stage's
/// boundary invariant — never a panic, never a silently wrong result.
#[test]
fn corrupt_faults_are_caught_at_their_stage() {
    for (plan, stage) in [
        ("place:corrupt:1", Stage::Place),
        ("map:corrupt:1", Stage::Map),
        ("route:corrupt:1", Stage::Route),
    ] {
        let e = congestion_flow(&net(3), 0.1, &opts_with(plan)).unwrap_err();
        assert_eq!(e.stage, stage, "plan {plan}");
        assert_eq!(e.kind, FlowErrorKind::Invariant, "plan {plan}");
    }
}

/// Deadline faults surface as typed errors with the stage attached, and
/// the Display form carries stage, kind and detail for log lines.
#[test]
fn deadline_fault_is_typed_and_displayable() {
    let e = congestion_flow(&net(3), 0.1, &opts_with("sta:deadline:1")).unwrap_err();
    assert_eq!((e.stage, e.kind), (Stage::Sta, FlowErrorKind::Deadline));
    let shown = e.to_string();
    assert!(shown.contains("sta") && shown.contains("deadline"), "got: {shown}");
    // the spine is a real std error, so it boxes into anyhow-style call
    // sites without adapters
    let boxed: Box<dyn std::error::Error> = Box::new(e);
    assert!(boxed.to_string().contains("injected fault"));
}

/// Fault injection is deterministic: the same plan produces the same
/// typed failure on every run.
#[test]
fn injected_failures_reproduce_exactly() {
    let a = congestion_flow(&net(4), 0.1, &opts_with("map:corrupt:1,seed=9")).unwrap_err();
    let b = congestion_flow(&net(4), 0.1, &opts_with("map:corrupt:1,seed=9")).unwrap_err();
    assert_eq!((a.stage, a.kind, a.detail.clone()), (b.stage, b.kind, b.detail));
}

/// An un-faulted flow with validation on still completes — the invariant
/// checker must pass healthy intermediates through untouched.
#[test]
fn validation_passes_healthy_flows() {
    let opts = FlowOptions { validate: true, ..Default::default() };
    let r = congestion_flow(&net(5), 0.1, &opts).unwrap();
    assert!(r.num_cells > 0);
}

/// Batch end to end: a transient panic fault clears on retry, a starved
/// router degrades through K escalation, and both jobs land ok while an
/// unrecoverable job fails alone with its typed error.
#[test]
fn batch_recovers_with_retry_and_escalation() {
    let mk = |seed: u64, name: &str| BatchJob {
        name: name.into(),
        network: net(seed),
        ks: vec![0.0, 0.1],
        opts: FlowOptions::default(),
        deadline: None,
    };
    let mut flaky = mk(3, "flaky");
    flaky.opts.fault = Some(FaultPlan::parse("map:panic:1").unwrap());
    let mut starved = mk(4, "starved");
    starved.opts.route.capacity_scale = 0.02;
    let mut doomed = mk(5, "doomed");
    doomed.opts.fault = Some(FaultPlan::parse("map:panic:1,map:panic:2").unwrap());
    let jobs = [flaky, starved, doomed];
    let bopts = BatchOptions { retries: 1, ..Default::default() };
    let report = run_batch_opts(&jobs, &Pool::new(2), &bopts);
    // flaky: attempt 1 trips the nth=1 fault, attempt 2 runs clean
    let flaky = &report.jobs[0];
    assert!(flaky.outcome.is_ok(), "retry must clear the transient fault");
    assert_eq!(flaky.attempts, 2);
    // starved: whole sweep unroutable, so one escalated rung is appended
    let starved = report.jobs[1].outcome.as_ref().unwrap();
    assert!(starved.degraded);
    assert_eq!(starved.rows.last().unwrap().k, 0.2);
    // doomed: faults on both attempts; the last typed error is kept
    let doomed = &report.jobs[2];
    assert_eq!(doomed.attempts, 2);
    let e = doomed.outcome.as_ref().unwrap_err();
    assert_eq!(e.kind, FlowErrorKind::Panicked);
    assert!(e.detail.contains("injected fault"));
    assert_eq!(report.num_ok(), 2);
    assert_eq!(report.num_degraded(), 1);
    assert_eq!(report.num_failed(), 1);
}

/// The degraded rows a recovered batch reports are the same rows a direct
/// (serial, no-pool) run of the job produces — recovery must not change
/// results, only rescue them.
#[test]
fn degraded_results_match_direct_runs() {
    let mut job = BatchJob {
        name: "tight".into(),
        network: net(4),
        ks: vec![0.0, 0.1],
        opts: FlowOptions::default(),
        deadline: None,
    };
    job.opts.route.capacity_scale = 0.02;
    let bopts = BatchOptions::default();
    let direct = run_batch_job(&job, &bopts).unwrap();
    let pooled = run_batch_opts(std::slice::from_ref(&job), &Pool::new(2), &bopts);
    let pooled = pooled.jobs[0].outcome.as_ref().unwrap();
    assert_eq!(direct.degraded, pooled.degraded);
    assert_eq!(direct.rows.len(), pooled.rows.len());
    for (a, b) in direct.rows.iter().zip(&pooled.rows) {
        assert_eq!(a.k, b.k);
        assert_eq!(a.result.cell_area, b.result.cell_area);
        assert_eq!(a.result.route.total_wirelength, b.result.route.total_wirelength);
    }
}
