//! End-to-end observability: a full flow run must attribute metrics to
//! every pipeline stage and export them as JSON.

use casyn::flow::{congestion_flow, FlowOptions};
use casyn::logic::OptimizeOptions;
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::obs;
use std::sync::Mutex;

/// The global metrics registry is process-wide state; tests that toggle
/// it must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match OBS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn run_flow() -> casyn::flow::FlowResult {
    let net = random_pla(&PlaGenConfig {
        inputs: 10,
        outputs: 6,
        terms: 40,
        min_literals: 3,
        max_literals: 6,
        mean_outputs_per_term: 1.4,
        seed: 42,
    })
    .to_network();
    let opts = FlowOptions { optimize: Some(OptimizeOptions::default()), ..FlowOptions::default() };
    congestion_flow(&net, 0.01, &opts).unwrap()
}

#[test]
fn full_flow_emits_stage_telemetry_and_metrics() {
    let _guard = lock();
    obs::reset();
    obs::set_enabled(true);
    let r = run_flow();
    obs::set_enabled(false);

    // every pipeline stage is recorded, in execution order
    let names = r.telemetry.stage_names();
    assert_eq!(
        names,
        ["optimize", "decompose", "floorplan", "place", "map", "legalize", "route", "sta"]
    );
    assert!(r.telemetry.total_ms > 0.0);
    assert!(r.telemetry.peak_live_nodes > 0);
    for s in &r.telemetry.stages {
        assert!(s.wall_ms >= 0.0, "stage {} has negative wall clock", s.stage);
    }

    // metric activity is attributed to the stage that caused it
    let map_stage = r.telemetry.stage("map").unwrap();
    assert!(
        map_stage.metrics.keys().any(|k| k.starts_with("map.")),
        "map stage metrics: {:?}",
        map_stage.metrics
    );
    let route_stage = r.telemetry.stage("route").unwrap();
    assert!(
        route_stage.metrics.keys().any(|k| k.starts_with("route.")),
        "route stage metrics: {:?}",
        route_stage.metrics
    );

    // the registry spans the whole pipeline: >= 12 distinct
    // `stage.metric` keys over >= 5 instrumented crates
    let snap = obs::snapshot();
    assert!(
        snap.metrics.len() >= 12,
        "expected >= 12 metric keys, got {}: {:?}",
        snap.metrics.len(),
        snap.metrics.keys().collect::<Vec<_>>()
    );
    let prefixes: std::collections::BTreeSet<&str> =
        snap.metrics.keys().filter_map(|k| k.split('.').next()).collect();
    for expected in ["logic", "place", "map", "route", "sta"] {
        assert!(prefixes.contains(expected), "missing metric prefix {expected}: {prefixes:?}");
    }
    assert!(prefixes.len() >= 5);
    // the counter is cumulative (the floorplan derivation runs a
    // throwaway mapping too), but the map *stage delta* is exactly the
    // final mapping's contribution
    assert_eq!(map_stage.metrics.get("map.cells_emitted"), Some(&(r.num_cells as f64)));
    assert_eq!(snap.counter("route.iterations"), Some(r.route.iterations as u64));

    // JSON export carries the per-stage timings and the metric names
    let json = r.telemetry.to_json().to_string_pretty();
    assert!(json.contains("\"schema\": \"casyn.telemetry.v1\""));
    assert!(json.contains("\"stage\": \"route\""));
    assert!(json.contains("\"wall_ms\""));
    assert!(json.contains("map."));
    let flat = casyn::flow::telemetry::snapshot_json(&snap).to_string_pretty();
    assert!(flat.contains("route.iterations"));
    assert!(flat.contains("sta.arrival_propagations"));

    obs::reset();
}

#[test]
fn disabled_collection_still_times_stages() {
    let _guard = lock();
    obs::set_enabled(false);
    obs::reset();
    let r = run_flow();
    let names = r.telemetry.stage_names();
    assert!(names.contains(&"map") && names.contains(&"route"));
    assert!(r.telemetry.total_ms > 0.0);
    // no metric deltas are attributed while collection is off
    for s in &r.telemetry.stages {
        assert!(s.metrics.is_empty(), "stage {} leaked metrics: {:?}", s.stage, s.metrics);
    }
    assert!(obs::snapshot().metrics.is_empty());
}
