//! Durability end-to-end tests: WAL replay after a simulated crash,
//! disk-cache corruption quarantine, the memory watchdog, and seeded
//! I/O chaos (torn journal writes, dropped connections with client
//! retry) — all over real sockets on ephemeral ports.

use casyn::exec::FaultPlan;
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::blif::to_blif;
use casyn::obs;
use casyn::obs::json::JsonValue;
use casyn::serve::{client, request_json, RetryPolicy, ServeConfig, Server};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// The metrics registry is process-wide and `Server::start` enables it;
/// tests that read counter deltas must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match OBS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("casyn-durable-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(state: &Path, config: ServeConfig) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: Some(state.to_path_buf()),
        workers: 2,
        ..config
    })
    .unwrap()
}

/// Single-job manifest with an inline BLIF source.
fn manifest(name: &str, seed: u64, terms: usize, ks: &[f64]) -> String {
    let pla = random_pla(&PlaGenConfig { terms, seed, ..Default::default() });
    let blif = to_blif(&pla.to_network(), name);
    JsonValue::object(vec![(
        "jobs".into(),
        JsonValue::Array(vec![JsonValue::object(vec![
            ("name".into(), JsonValue::Str(name.into())),
            ("source".into(), JsonValue::Str(blif)),
            ("format".into(), JsonValue::Str("blif".into())),
            ("ks".into(), JsonValue::Array(ks.iter().map(|&k| JsonValue::Number(k)).collect())),
        ])]),
    )])
    .to_string_pretty()
}

fn submit_one(addr: &str, body: &str) -> (i64, String) {
    let (status, doc) = request_json(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(status, 202, "submit failed: {doc:?}");
    let job = doc.get("jobs").and_then(|v| v.as_array()).and_then(|a| a.first()).unwrap();
    (
        job.get("id").and_then(|v| v.as_f64()).unwrap() as i64,
        job.get("cache").and_then(|v| v.as_str()).unwrap().to_string(),
    )
}

fn result_wait(addr: &str, id: i64) -> JsonValue {
    let (status, doc) =
        request_json(addr, "GET", &format!("/jobs/{id}/result?wait=1"), None).unwrap();
    assert_eq!(status, 200, "result fetch failed: {doc:?}");
    doc
}

fn shutdown(addr: &str, server: Server) {
    request_json(addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

fn counter(snap: &obs::Snapshot, key: &str) -> u64 {
    snap.counter(key).unwrap_or(0)
}

/// The deterministic part of a result: rows with the wall-clock/alloc
/// telemetry stripped, as one compact string for bit-exact comparison.
fn stable_rows(doc: &JsonValue) -> String {
    let rows = doc.get("rows").and_then(|v| v.as_array()).expect("result has rows");
    let stripped: Vec<JsonValue> = rows
        .iter()
        .map(|r| match r {
            JsonValue::Object(fields) => JsonValue::Object(
                fields.iter().filter(|(k, _)| k != "telemetry").cloned().collect(),
            ),
            other => other.clone(),
        })
        .collect();
    JsonValue::Array(stripped).to_string_compact()
}

fn wal_path(state: &Path) -> PathBuf {
    state.join("casyn.wal.v1")
}

/// The single spilled artifact for a one-job cache (panics if the spill
/// count differs so tests notice schema drift).
fn only_cache_file(state: &Path) -> PathBuf {
    let dir = state.join("cache").join("job");
    let mut files: Vec<PathBuf> = fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
    assert_eq!(files.len(), 1, "expected exactly one spilled artifact in {}", dir.display());
    files.remove(0)
}

/// Crash + restart: a job that finished before the crash is served
/// straight from the disk cache (no recompute, zero reroute), a job
/// that was admitted but unfinished is re-run to an identical report,
/// and a torn final journal record is tolerated.
#[test]
fn crash_recovery_replays_journal_and_serves_disk_hits() {
    let _guard = lock();
    let state = tmpdir("recover");
    let ma = manifest("job-a", 11, 40, &[0.0, 1.0]);
    let mb = manifest("job-b", 23, 36, &[0.5]);

    // run both jobs to completion, remembering their reports
    let server = start(&state, ServeConfig::default());
    let addr = server.endpoint();
    let (ida, _) = submit_one(&addr, &ma);
    let ra = result_wait(&addr, ida);
    let (idb, _) = submit_one(&addr, &mb);
    let rb = result_wait(&addr, idb);
    shutdown(&addr, server);

    // simulate dying mid-run: job B's terminal record never made it to
    // the journal (it is "started" at the crash), its artifact never hit
    // the disk cache, and the final journal line is torn mid-record
    let wal = fs::read_to_string(wal_path(&state)).unwrap();
    let keep: Vec<&str> = wal
        .lines()
        .filter(|l| !(l.contains("\"t\":\"done\"") && l.contains(&format!("\"job\":{idb}"))))
        .collect();
    fs::write(wal_path(&state), keep.join("\n") + "\n{\"t\":\"do").unwrap();
    let b_key = {
        // two artifacts are on disk; B's is the one A's key does not own
        let dir = state.join("cache").join("job");
        let mut files: Vec<PathBuf> =
            fs::read_dir(&dir).unwrap().map(|e| e.unwrap().path()).collect();
        assert_eq!(files.len(), 2);
        // A's journal "done" record names its key; B's file is the other
        let a_line = keep.iter().find(|l| l.contains("\"t\":\"done\"")).unwrap();
        files.retain(|f| {
            let stem = f.file_stem().unwrap().to_string_lossy().into_owned();
            !a_line.contains(&stem)
        });
        assert_eq!(files.len(), 1, "expected exactly one non-A artifact");
        files.remove(0)
    };
    fs::remove_file(&b_key).unwrap();

    // restart against the damaged state
    let before = obs::snapshot();
    let server = start(&state, ServeConfig::default());
    let addr = server.endpoint();

    // pre-crash completed job: served from the disk spill, bit-identical
    let ra2 = result_wait(&addr, ida);
    assert_eq!(ra2.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(ra2.get("cache").and_then(|v| v.as_str()), Some("disk"));
    assert_eq!(stable_rows(&ra2), stable_rows(&ra), "disk hit must be bit-identical");

    // in-flight job: re-enqueued through the normal path, identical rows
    let rb2 = result_wait(&addr, idb);
    assert_eq!(rb2.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(stable_rows(&rb2), stable_rows(&rb), "recovered re-run must be bit-identical");

    let delta = obs::snapshot().delta_since(&before);
    assert_eq!(counter(&delta, "serve.recovered"), 1, "only B re-runs");
    assert_eq!(counter(&delta, "serve.computes"), 1, "A must not recompute");
    assert!(counter(&delta, "serve.cache.disk_hits") >= 1);
    assert!(counter(&delta, "serve.wal.replayed") >= 4);

    // zero-reroute check for the disk hit: resubmitting A's manifest
    // after everything is terminal touches neither router nor flow
    let before = obs::snapshot();
    let (ida2, cache) = submit_one(&addr, &ma);
    let ra3 = result_wait(&addr, ida2);
    let delta = obs::snapshot().delta_since(&before);
    assert!(cache == "hit" || cache == "disk", "got cache {cache:?}");
    assert_eq!(counter(&delta, "route.iterations"), 0, "disk hit re-ran the router");
    assert_eq!(counter(&delta, "serve.computes"), 0);
    assert_eq!(stable_rows(&ra3), stable_rows(&ra));
    shutdown(&addr, server);

    fs::remove_dir_all(&state).unwrap();
}

/// A corrupted artifact is quarantined and recomputed on replay — the
/// damaged bytes are never served — and the address is repopulated.
#[test]
fn corrupted_cache_entry_is_quarantined_and_recomputed() {
    let _guard = lock();
    let state = tmpdir("quarantine");
    let m = manifest("victim", 31, 38, &[0.0, 0.5]);

    let server = start(&state, ServeConfig::default());
    let addr = server.endpoint();
    let (id, _) = submit_one(&addr, &m);
    let r0 = result_wait(&addr, id);
    shutdown(&addr, server);

    // flip payload digits, leaving the checksum trailer stale
    let artifact = only_cache_file(&state);
    let text = fs::read_to_string(&artifact).unwrap();
    let (payload, trailer) = text.rsplit_once("#fnv1a:").unwrap();
    let mangled = payload.replace(['1', '2', '3'], "9") + "#fnv1a:" + trailer;
    assert_ne!(mangled, text, "corruption must change the payload");
    fs::write(&artifact, &mangled).unwrap();

    let before = obs::snapshot();
    let server = start(&state, ServeConfig::default());
    let addr = server.endpoint();
    let r1 = result_wait(&addr, id);
    let delta = obs::snapshot().delta_since(&before);

    // the job recomputed to the same report; corruption was quarantined
    assert_eq!(r1.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(stable_rows(&r1), stable_rows(&r0), "recompute must match the original");
    assert_eq!(counter(&delta, "serve.cache.corrupt"), 1);
    assert_eq!(counter(&delta, "serve.recovered"), 1, "corrupt artifact forces a re-run");
    let quarantined: Vec<_> =
        fs::read_dir(state.join("cache").join("quarantine")).unwrap().collect();
    assert_eq!(quarantined.len(), 1, "damaged file preserved as evidence");
    // the finished re-run spilled a fresh, valid artifact to the address
    let respilled = fs::read_to_string(only_cache_file(&state)).unwrap();
    assert!(respilled.contains("#fnv1a:"), "respilled artifact has a trailer");
    assert_ne!(respilled, mangled);
    shutdown(&addr, server);

    fs::remove_dir_all(&state).unwrap();
}

/// The memory watchdog sheds submissions with 503 + Retry-After while
/// live heap exceeds the budget; reads are unaffected.
#[test]
fn mem_limit_sheds_submissions_with_retry_after() {
    let _guard = lock();
    let state = tmpdir("shed");
    let before = obs::snapshot();
    let server = start(&state, ServeConfig { mem_limit_bytes: 1, ..Default::default() });
    let addr = server.endpoint();

    let (status, doc) =
        request_json(&addr, "POST", "/jobs", Some(&manifest("shed", 1, 8, &[0.0]))).unwrap();
    assert_eq!(status, 503, "1-byte budget must shed: {doc:?}");
    assert_eq!(doc.get("retry_after_s").and_then(|v| v.as_f64()), Some(1.0));
    // the header itself reaches the wire
    let raw = client::raw(&addr, "POST /jobs HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n{}")
        .unwrap();
    assert_eq!(raw.status, 503);
    // reads still work under shedding
    let (status, _) = request_json(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let delta = obs::snapshot().delta_since(&before);
    assert!(counter(&delta, "serve.shed") >= 2);
    shutdown(&addr, server);

    fs::remove_dir_all(&state).unwrap();
}

/// Seeded I/O chaos: a dropped connection is retried deterministically
/// by the client, and a torn journal append degrades durability (wedged
/// journal, warning counters) without affecting results — and the state
/// directory still replays cleanly afterwards.
#[test]
fn io_chaos_conn_drop_and_torn_wal_are_survivable() {
    let _guard = lock();
    let state = tmpdir("chaos");
    let m = manifest("chaos", 47, 30, &[0.0]);

    // request #2 (the result GET) is dropped before any response bytes;
    // the client's retry ladder recovers without wall-clock randomness.
    // WAL append #2 (job 0's "started" record) is torn mid-write: the
    // journal wedges and every later append is dropped with a warning.
    let plan = FaultPlan::parse("conn:conn_drop:2,wal:torn_write:2").unwrap();
    let before = obs::snapshot();
    let server = start(&state, ServeConfig { io_fault: Some(plan), ..Default::default() });
    let addr = server.endpoint();

    let (id, cache) = submit_one(&addr, &m);
    assert_eq!(cache, "miss");
    let resp = client::request_with(
        &addr,
        "GET",
        &format!("/jobs/{id}/result?wait=1"),
        None,
        &RetryPolicy::default(),
    )
    .unwrap();
    assert_eq!(resp.status, 200, "retry must recover the dropped GET");
    let doc = resp.json().unwrap();
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("done"));
    shutdown(&addr, server);

    let delta = obs::snapshot().delta_since(&before);
    assert_eq!(counter(&delta, "serve.conn_dropped"), 1);
    assert!(counter(&delta, "serve.wal.errors") >= 1, "torn append must be counted");

    // the torn journal replays: the tail is tolerated, and although the
    // wedge dropped the job's terminal record, its artifact did reach
    // the disk cache — recovery serves it without recomputing
    let before = obs::snapshot();
    let server = start(&state, ServeConfig::default());
    let addr = server.endpoint();
    let r = result_wait(&addr, id);
    assert_eq!(r.get("status").and_then(|v| v.as_str()), Some("done"));
    assert_eq!(r.get("cache").and_then(|v| v.as_str()), Some("disk"));
    let delta = obs::snapshot().delta_since(&before);
    assert_eq!(counter(&delta, "serve.computes"), 0, "artifact survived the torn journal");
    shutdown(&addr, server);

    fs::remove_dir_all(&state).unwrap();
}
