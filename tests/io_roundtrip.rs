//! Integration tests for the interchange formats: PLA and BLIF in,
//! Verilog/BLIF/DOT out, with functional equivalence end to end.

use casyn::flow::{congestion_flow, FlowOptions};
use casyn::library::corelib018;
use casyn::logic::decompose;
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::blif::{to_blif, Blif};
use casyn::netlist::dot::{mapped_to_dot, subject_to_dot};
use casyn::netlist::verilog::to_verilog;

fn pla() -> casyn::netlist::Pla {
    random_pla(&PlaGenConfig {
        inputs: 8,
        outputs: 5,
        terms: 24,
        min_literals: 2,
        max_literals: 5,
        mean_outputs_per_term: 1.4,
        seed: 99,
    })
}

/// PLA → network → BLIF text → parsed network keeps the function.
#[test]
fn pla_to_blif_roundtrip() {
    let pla = pla();
    let net = pla.to_network();
    let text = to_blif(&net, "roundtrip");
    let back: Blif = text.parse().expect("generated BLIF must parse");
    assert_eq!(back.model, "roundtrip");
    for m in 0..256u32 {
        let asg: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
        assert_eq!(
            net.simulate_outputs(&asg),
            back.network().simulate_outputs(&asg),
            "BLIF roundtrip mismatch at {asg:?}"
        );
    }
}

/// PLA text roundtrip keeps the function (espresso format).
#[test]
fn pla_text_roundtrip() {
    let pla = pla();
    let text = pla.to_pla_string();
    let back: casyn::netlist::Pla = text.parse().expect("generated PLA must parse");
    for m in 0..256u32 {
        let asg: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
        assert_eq!(pla.eval(&asg), back.eval(&asg));
    }
}

/// The mapped netlist exports to Verilog with one instance per cell and
/// all ports present.
#[test]
fn mapped_verilog_export_is_complete() {
    let net = pla().to_network();
    let r = congestion_flow(&net, 0.1, &FlowOptions::default()).unwrap();
    let v = to_verilog(&r.netlist, "top");
    assert!(v.matches(" u").count() >= r.netlist.num_cells());
    for name in r.netlist.input_names() {
        assert!(v.contains(&format!("input {name}")), "missing input {name}");
    }
    assert_eq!(v.lines().filter(|l| l.contains("assign")).count(), 5);
    // every instance references the Y pin exactly once
    assert_eq!(v.matches(".Y(").count(), r.netlist.num_cells());
}

/// DOT exports are syntactically sane (balanced braces, right counts).
#[test]
fn dot_exports() {
    let net = pla().to_network();
    let dec = decompose(&net);
    let (graph, _) = dec.graph.sweep();
    let d1 = subject_to_dot(&graph, "subject");
    assert!(d1.starts_with("digraph"));
    assert_eq!(d1.matches('{').count(), d1.matches('}').count());
    let r = congestion_flow(&net, 0.1, &FlowOptions::default()).unwrap();
    let d2 = mapped_to_dot(&r.netlist, "mapped");
    assert_eq!(d2.matches("shape=component").count(), r.netlist.num_cells());
}

/// The mapped netlist still matches the PLA after the full flow, checked
/// through the library's cell evaluator.
#[test]
fn full_flow_matches_pla_truth_table() {
    let pla = pla();
    let net = pla.to_network();
    let lib = corelib018();
    let r = congestion_flow(&net, 0.5, &FlowOptions::default()).unwrap();
    for m in 0..256u32 {
        let asg: Vec<bool> = (0..8).map(|i| m >> i & 1 == 1).collect();
        assert_eq!(
            pla.eval(&asg),
            r.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg)
        );
    }
}
