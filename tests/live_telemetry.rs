//! End-to-end tests for the live telemetry surfaces: windowed `/stats`,
//! the Prometheus text exposition, the enriched `/healthz` document and
//! the request-id thread through submit, status and event streams.

use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::blif::to_blif;
use casyn::obs::json::JsonValue;
use casyn::serve::{client, request_json, ServeConfig, Server};
use std::io::{Read, Write};
use std::sync::Mutex;

/// The metrics registry is process-wide and `Server::start` enables it;
/// tests that read counter deltas must not interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match OBS_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn start(config: ServeConfig) -> Server {
    Server::start(ServeConfig { addr: "127.0.0.1:0".into(), ..config }).unwrap()
}

/// Single-job manifest with an inline BLIF source.
fn manifest(name: &str, seed: u64, terms: usize, ks: &[f64]) -> String {
    let pla = random_pla(&PlaGenConfig { terms, seed, ..Default::default() });
    let blif = to_blif(&pla.to_network(), name);
    JsonValue::object(vec![(
        "jobs".into(),
        JsonValue::Array(vec![JsonValue::object(vec![
            ("name".into(), JsonValue::Str(name.into())),
            ("source".into(), JsonValue::Str(blif)),
            ("format".into(), JsonValue::Str("blif".into())),
            ("ks".into(), JsonValue::Array(ks.iter().map(|&k| JsonValue::Number(k)).collect())),
        ])]),
    )])
    .to_string_pretty()
}

fn submit_one(addr: &str, body: &str) -> i64 {
    let (status, doc) = request_json(addr, "POST", "/jobs", Some(body)).unwrap();
    assert_eq!(status, 202, "submit failed: {doc:?}");
    let job = doc.get("jobs").and_then(|v| v.as_array()).and_then(|a| a.first()).unwrap();
    job.get("id").and_then(|v| v.as_f64()).unwrap() as i64
}

fn result_wait(addr: &str, id: i64) -> JsonValue {
    let (status, doc) =
        request_json(addr, "GET", &format!("/jobs/{id}/result?wait=1"), None).unwrap();
    assert_eq!(status, 200, "result fetch failed: {doc:?}");
    doc
}

/// Sends raw bytes and returns the full response text *including the
/// head*, which `client::raw` strips — needed to see response headers.
fn raw_with_head(addr: &str, raw: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(raw.as_bytes()).unwrap();
    let mut text = String::new();
    s.read_to_string(&mut text).unwrap();
    text
}

#[test]
fn stats_exposes_windowed_activity_and_build_info() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 2, ..Default::default() });
    let addr = server.endpoint();
    let id = submit_one(&addr, &manifest("stats", 17, 24, &[0.0, 1.0]));
    result_wait(&addr, id);

    let (status, doc) = request_json(&addr, "GET", "/stats", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("schema").and_then(|v| v.as_str()), Some("casyn.stats.v1"));
    assert!(doc.get("uptime_s").and_then(|v| v.as_f64()).is_some(), "{doc:?}");
    let version = doc.get("version").and_then(|v| v.as_str()).unwrap();
    assert!(version.starts_with(env!("CARGO_PKG_VERSION")), "version: {version}");
    assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(false));

    // the finished job shows up as a 1m-window jobs_done delta, and the
    // stage timers feed at least one windowed wall-ms histogram
    let windows = doc.get("windows").unwrap();
    for w in ["10s", "1m", "5m"] {
        assert!(windows.get(w).is_some(), "missing window {w}");
    }
    let done = windows
        .get("1m")
        .and_then(|w| w.get("serve.jobs_done"))
        .and_then(|v| v.get("delta"))
        .and_then(|v| v.as_f64())
        .unwrap_or(0.0);
    assert!(done >= 1.0, "jobs_done delta {done} in {doc:?}");
    let JsonValue::Object(minute) = windows.get("1m").unwrap() else {
        panic!("1m window is not an object");
    };
    let stage = minute.iter().find(|(k, _)| k.ends_with(".wall_ms_hist"));
    let (_, hist) = stage.expect("no windowed stage histogram in the 1m window");
    let p50 = hist.get("p50").and_then(|v| v.as_f64()).unwrap();
    let p99 = hist.get("p99").and_then(|v| v.as_f64()).unwrap();
    assert!(p50 >= 0.0 && p99 >= p50, "p50 {p50} p99 {p99}");

    // the sparkline series is fixed-length, per second, oldest first
    let series = doc.get("series").and_then(|s| s.get("serve.jobs_done")).unwrap();
    assert_eq!(series.as_array().unwrap().len(), 60);

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn prom_exposition_has_canonical_families() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();
    // two identical submissions guarantee a cache hit alongside the compute
    let m = manifest("prom", 23, 24, &[0.0]);
    for _ in 0..2 {
        let id = submit_one(&addr, &m);
        result_wait(&addr, id);
    }

    let r = client::raw(&addr, "GET /metrics?format=prom HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    assert_eq!(r.status, 200);
    let text = &r.body;
    assert!(text.contains("# TYPE casyn_jobs_total counter"), "exposition:\n{text}");
    assert!(text.contains("casyn_jobs_total{status=\"done\"}"), "exposition:\n{text}");
    assert!(text.contains("# TYPE casyn_cache_hits_total counter"), "exposition:\n{text}");
    assert!(text.contains("# TYPE casyn_stage_wall_ms histogram"), "exposition:\n{text}");
    assert!(text.contains("casyn_stage_wall_ms_bucket{"), "exposition:\n{text}");
    assert!(text.contains("le=\"+Inf\""), "exposition:\n{text}");
    assert!(text.contains("casyn_stage_wall_ms_count{"), "exposition:\n{text}");
    // windowed summaries ride along as window-labelled gauges
    assert!(text.contains("window=\"1m\""), "exposition:\n{text}");
    assert!(text.contains("casyn_stage_wall_ms_p95{"), "exposition:\n{text}");

    // every non-comment line is `name{labels} value` or `name value`
    for line in text.lines().filter(|l| !l.is_empty() && !l.starts_with('#')) {
        let (metric, value) = line.rsplit_once(' ').expect("sample line has a value");
        assert!(value.parse::<f64>().is_ok() || value == "+Inf", "bad value in: {line}");
        let name = metric.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in: {line}"
        );
    }

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn request_id_flows_through_submit_status_and_events() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();
    let m = manifest("rid", 29, 16, &[0.0]);

    // a client-supplied id is echoed as a response header and body field
    let raw = format!(
        "POST /jobs HTTP/1.1\r\nHost: t\r\nX-Request-Id: trace-me-42\r\n\
         Content-Length: {}\r\n\r\n{m}",
        m.len()
    );
    let full = raw_with_head(&addr, &raw);
    let (head, body) = full.split_once("\r\n\r\n").unwrap();
    assert!(head.contains("X-Request-Id: trace-me-42"), "head:\n{head}");
    let doc = JsonValue::parse(body).unwrap();
    assert_eq!(doc.get("request_id").and_then(|v| v.as_str()), Some("trace-me-42"));
    let job = doc.get("jobs").and_then(|v| v.as_array()).and_then(|a| a.first()).unwrap();
    let id = job.get("id").and_then(|v| v.as_f64()).unwrap() as i64;
    result_wait(&addr, id);

    // the job status document carries the admitting request's id
    let (status, st) = request_json(&addr, "GET", &format!("/jobs/{id}"), None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(st.get("request_id").and_then(|v| v.as_str()), Some("trace-me-42"));

    // ... and so does every NDJSON event for the job
    let ev =
        client::raw(&addr, &format!("GET /jobs/{id}/events HTTP/1.1\r\nHost: t\r\n\r\n")).unwrap();
    assert_eq!(ev.status, 200);
    let events: Vec<&str> = ev.body.lines().filter(|l| !l.is_empty()).collect();
    assert!(!events.is_empty());
    for line in &events {
        assert!(line.contains("\"request_id\":\"trace-me-42\""), "event without id: {line}");
    }

    // ids with unsafe characters are sanitized, absent ids are generated
    let id2 = {
        let raw = format!(
            "POST /jobs HTTP/1.1\r\nHost: t\r\nX-Request-Id: a b\"c\r\n\
             Content-Length: {}\r\n\r\n{m}",
            m.len()
        );
        let full = raw_with_head(&addr, &raw);
        let body = full.split_once("\r\n\r\n").unwrap().1;
        let doc = JsonValue::parse(body).unwrap();
        let rid = doc.get("request_id").and_then(|v| v.as_str()).unwrap().to_string();
        assert_eq!(rid, "a_b_c", "unsafe characters are replaced");
        doc.get("jobs")
            .and_then(|v| v.as_array())
            .and_then(|a| a.first())
            .and_then(|j| j.get("id"))
            .and_then(|v| v.as_f64())
            .unwrap() as i64
    };
    result_wait(&addr, id2);
    let (_, doc) = request_json(&addr, "POST", "/jobs", Some(&m)).unwrap();
    let rid = doc.get("request_id").and_then(|v| v.as_str()).unwrap();
    assert!(rid.starts_with('r') && rid.len() == 7, "generated id: {rid}");

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}

#[test]
fn healthz_reports_uptime_version_queue_and_degraded() {
    let _guard = lock();
    let server = start(ServeConfig { workers: 1, ..Default::default() });
    let addr = server.endpoint();

    let (status, doc) = request_json(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(doc.get("status").and_then(|v| v.as_str()), Some("ok"));
    assert!(doc.get("uptime_s").and_then(|v| v.as_f64()).unwrap() >= 0.0);
    let version = doc.get("version").and_then(|v| v.as_str()).unwrap();
    assert!(version.starts_with(env!("CARGO_PKG_VERSION")), "version: {version}");
    assert_eq!(doc.get("queue_depth").and_then(|v| v.as_f64()), Some(0.0));
    assert_eq!(doc.get("degraded").and_then(|v| v.as_bool()), Some(false));

    request_json(&addr, "POST", "/shutdown", None).unwrap();
    server.wait().unwrap();
}
