//! Property-based tests: for random PLAs and random multi-level networks,
//! the whole synthesis pipeline is a semantics-preserving transformation,
//! and structural invariants of its intermediate artifacts hold.

use casyn::core::{map, partition, CostKind, MapOptions, PartitionScheme, TreeNode};
use casyn::library::corelib018;
use casyn::logic::{decompose, optimize, OptimizeOptions};
use casyn::netlist::bench::{random_network, random_pla, NetGenConfig, PlaGenConfig};
use casyn::netlist::subject::BaseKind;
use casyn::netlist::Point;
use proptest::prelude::*;

fn pla_strategy() -> impl Strategy<Value = PlaGenConfig> {
    (2usize..7, 1usize..5, 4usize..24, 1u64..1000).prop_map(|(inputs, outputs, terms, seed)| {
        PlaGenConfig {
            inputs,
            outputs,
            terms,
            min_literals: 1,
            max_literals: inputs.min(4),
            mean_outputs_per_term: 1.3,
            seed,
        }
    })
}

fn net_strategy() -> impl Strategy<Value = NetGenConfig> {
    (2usize..7, 1usize..5, 4usize..32, 1u64..1000).prop_map(|(inputs, outputs, nodes, seed)| {
        NetGenConfig {
            inputs,
            outputs,
            nodes,
            max_fanins: 3,
            max_cubes: 3,
            locality_window: 8,
            seed,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// PLA → network → decomposition preserves the function exhaustively.
    #[test]
    fn decomposition_preserves_pla_function(cfg in pla_strategy()) {
        let pla = random_pla(&cfg);
        let net = pla.to_network();
        let dec = decompose(&net);
        for m in 0..(1u32 << cfg.inputs) {
            let asg: Vec<bool> = (0..cfg.inputs).map(|i| m >> i & 1 == 1).collect();
            prop_assert_eq!(pla.eval(&asg), dec.graph.simulate_outputs(&asg));
        }
    }

    /// Extraction preserves the function of multi-level networks.
    #[test]
    fn extraction_preserves_function(cfg in net_strategy()) {
        let golden = random_network(&cfg);
        let mut net = golden.clone();
        optimize(&mut net, &OptimizeOptions::default());
        prop_assert!(net.literal_count() <= golden.literal_count());
        for m in 0..(1u32 << cfg.inputs) {
            let asg: Vec<bool> = (0..cfg.inputs).map(|i| m >> i & 1 == 1).collect();
            prop_assert_eq!(golden.simulate_outputs(&asg), net.simulate_outputs(&asg));
        }
    }

    /// Mapping with any scheme/cost is exhaustively equivalent to the
    /// subject graph.
    #[test]
    fn mapping_preserves_function(
        cfg in pla_strategy(),
        scheme_idx in 0usize..3,
        k in prop::sample::select(vec![0.0, 0.001, 0.1, 5.0]),
    ) {
        let pla = random_pla(&cfg);
        let dec = decompose(&pla.to_network());
        let (graph, _) = dec.graph.sweep();
        let lib = corelib018();
        let n = graph.num_vertices();
        let positions: Vec<Point> = (0..n)
            .map(|i| Point::new((i % 10) as f64 * 5.0, (i / 10) as f64 * 6.4))
            .collect();
        let scheme = [
            PartitionScheme::Dagon,
            PartitionScheme::Cone,
            PartitionScheme::PlacementDriven,
        ][scheme_idx];
        let r = map(&graph, &positions, &lib, &MapOptions { scheme, cost: CostKind::AreaWire { k }, ..Default::default() });
        for m in 0..(1u32 << cfg.inputs) {
            let asg: Vec<bool> = (0..cfg.inputs).map(|i| m >> i & 1 == 1).collect();
            prop_assert_eq!(
                graph.simulate_outputs(&asg),
                r.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg)
            );
        }
    }

    /// Partitioning invariants: every non-input vertex is hosted by
    /// exactly one internal tree node; leaves reference real vertices;
    /// fathers are actual fanouts.
    #[test]
    fn partition_forms_a_covering_forest(
        cfg in pla_strategy(),
        scheme_idx in 0usize..3,
    ) {
        let pla = random_pla(&cfg);
        let dec = decompose(&pla.to_network());
        let (graph, _) = dec.graph.sweep();
        let n = graph.num_vertices();
        let positions: Vec<Point> = (0..n)
            .map(|i| Point::new((i * 7 % 50) as f64, (i * 13 % 50) as f64))
            .collect();
        let scheme = [
            PartitionScheme::Dagon,
            PartitionScheme::Cone,
            PartitionScheme::PlacementDriven,
        ][scheme_idx];
        let forest = partition(&graph, scheme, &positions);
        let fanouts = graph.fanout_lists();
        let mut hosted = 0usize;
        for id in graph.ids() {
            match graph.kind(id) {
                BaseKind::Input => prop_assert!(forest.host[id.index()].is_none()),
                _ => {
                    let (t, nidx) = forest.host[id.index()].expect("hosted");
                    let node = &forest.trees[t as usize].nodes[nidx as usize];
                    match node {
                        TreeNode::Inv { gate, .. } | TreeNode::Nand { gate, .. } => {
                            prop_assert_eq!(*gate, id);
                        }
                        TreeNode::Leaf { .. } => prop_assert!(false, "host must be internal"),
                    }
                    hosted += 1;
                    if let Some(f) = forest.father[id.index()] {
                        prop_assert!(
                            fanouts[id.index()].contains(&f),
                            "father must be a fanout"
                        );
                    }
                }
            }
        }
        prop_assert_eq!(hosted, graph.num_gates());
        // every leaf references an existing vertex
        for tree in &forest.trees {
            for node in &tree.nodes {
                if let TreeNode::Leaf { signal } = node {
                    prop_assert!(signal.index() < n);
                }
            }
        }
    }

    /// Sweep keeps only live logic and preserves outputs.
    #[test]
    fn sweep_preserves_function(cfg in pla_strategy()) {
        let pla = random_pla(&cfg);
        let dec = decompose(&pla.to_network());
        let (clean, _) = dec.graph.sweep();
        prop_assert!(clean.num_gates() <= dec.graph.num_gates());
        for m in 0..(1u32 << cfg.inputs) {
            let asg: Vec<bool> = (0..cfg.inputs).map(|i| m >> i & 1 == 1).collect();
            prop_assert_eq!(dec.graph.simulate_outputs(&asg), clean.simulate_outputs(&asg));
        }
    }
}
