//! Parallel execution determinism: sweeping or batching on a multi-worker
//! pool must produce results bit-identical to the serial path. Scheduling
//! may reorder *execution*, never *results* — every per-K flow run is a
//! pure function of the shared immutable `Prepared`, and `par_map` writes
//! into input-indexed slots.

use casyn::exec::Pool;
use casyn::flow::{
    k_sweep_prepared, k_sweep_prepared_pool, prepare, prepare_pool, run_batch, BatchJob,
    FlowOptions,
};
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::network::Network;
use casyn::place::PlacerBackend;

fn net(seed: u64) -> Network {
    random_pla(&PlaGenConfig {
        inputs: 10,
        outputs: 6,
        terms: 40,
        min_literals: 3,
        max_literals: 6,
        mean_outputs_per_term: 1.4,
        seed,
    })
    .to_network()
}

/// Every observable field of the flow result except wall-clock telemetry,
/// which legitimately differs run to run.
fn assert_rows_identical(a: &casyn::flow::FlowResult, b: &casyn::flow::FlowResult) {
    assert_eq!(a.num_cells, b.num_cells);
    assert_eq!(a.cell_area, b.cell_area);
    assert_eq!(a.utilization_pct, b.utilization_pct);
    assert_eq!(a.route.violations, b.route.violations);
    assert_eq!(a.route.total_wirelength, b.route.total_wirelength);
    assert_eq!(a.route.iterations, b.route.iterations);
    assert_eq!(a.sta.critical_arrival(), b.sta.critical_arrival());
    for (ca, cb) in a.netlist.cells().iter().zip(b.netlist.cells()) {
        assert_eq!(ca.lib_cell, cb.lib_cell);
        assert_eq!(ca.inputs, cb.inputs);
        assert_eq!(ca.pos, cb.pos);
    }
}

#[test]
fn same_seed_same_placement_for_both_backends() {
    // Each backend is a deterministic function of the netlist alone: two
    // independent preparations of the same design must agree bit for bit.
    for backend in [PlacerBackend::Bisect, PlacerBackend::KWay] {
        let network = net(2002);
        let mut opts = FlowOptions::default();
        opts.placer.backend = backend;
        let a = prepare(&network, &opts).unwrap();
        let b = prepare(&network, &opts).unwrap();
        assert_eq!(a.positions, b.positions, "{backend} placement is not reproducible");
        assert!(!a.positions.is_empty());
    }
}

#[test]
fn kway_placement_on_four_workers_matches_serial() {
    // The k-way placer fans region-pair refinement out over the pool;
    // moves are computed against a frozen start-of-round snapshot and
    // applied in pair order, so worker count must not leak into results.
    for seed in [2002_u64, 77] {
        let network = net(seed);
        let mut opts = FlowOptions::default();
        opts.placer.backend = PlacerBackend::KWay;
        let serial = prepare_pool(&network, &opts, &Pool::new(1)).unwrap();
        let parallel = prepare_pool(&network, &opts, &Pool::new(4)).unwrap();
        assert_eq!(serial.positions, parallel.positions);
    }
}

#[test]
fn parallel_k_sweep_is_bit_identical_to_serial_across_seeds() {
    let ks = [0.0, 0.001, 0.01, 0.5, 2.0];
    for seed in [2002_u64, 77] {
        let network = net(seed);
        let opts = FlowOptions::default();
        let prep = prepare(&network, &opts).unwrap();
        let serial = k_sweep_prepared(&prep, &ks, &opts).unwrap();
        let parallel = k_sweep_prepared_pool(&prep, &ks, &opts, &Pool::new(4)).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.k, b.k, "rows must come back in input K order");
            assert_rows_identical(&a.result, &b.result);
        }
    }
}

#[test]
fn batch_on_four_workers_matches_one_worker() {
    let jobs: Vec<BatchJob> = [2002_u64, 77, 5]
        .iter()
        .map(|&seed| BatchJob {
            name: format!("seed-{seed}"),
            network: net(seed),
            ks: vec![0.0, 0.1],
            opts: FlowOptions::default(),
            deadline: None,
        })
        .collect();
    let one = run_batch(&jobs, &Pool::new(1));
    let four = run_batch(&jobs, &Pool::new(4));
    assert_eq!(one.jobs.len(), four.jobs.len());
    for (a, b) in one.jobs.iter().zip(&four.jobs) {
        assert_eq!(a.name, b.name, "report rows must stay in manifest order");
        let (ra, rb) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        assert_eq!(ra.rows.len(), rb.rows.len());
        assert_eq!(ra.degraded, rb.degraded);
        for (x, y) in ra.rows.iter().zip(&rb.rows) {
            assert_eq!(x.k, y.k);
            assert_rows_identical(&x.result, &y.result);
        }
    }
}
