//! Hierarchical span tracing, end to end: a full flow run must leave a
//! well-formed span tree, the sinks must emit parseable documents, and —
//! the determinism contract — recording a trace must not change any flow
//! result.

use casyn::exec::Pool;
use casyn::flow::{congestion_flow, k_sweep_prepared_pool, prepare, FlowOptions};
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::obs;
use casyn::obs::json::JsonValue;
use casyn::obs::trace::{EventKind, TraceEvent};
use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

/// The trace collector is process-wide state; tests that toggle it must
/// not interleave.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    match TRACE_LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn net(seed: u64) -> casyn::netlist::network::Network {
    random_pla(&PlaGenConfig {
        inputs: 10,
        outputs: 6,
        terms: 40,
        min_literals: 3,
        max_literals: 6,
        mean_outputs_per_term: 1.4,
        seed,
    })
    .to_network()
}

/// Runs one traced congestion flow and returns the drained timeline.
fn traced_flow_events() -> Vec<TraceEvent> {
    obs::trace::set_enabled(true);
    obs::trace::clear();
    let r = congestion_flow(&net(11), 0.5, &FlowOptions::default()).unwrap();
    assert!(r.num_cells > 0); // flow completed
    obs::trace::set_enabled(false);
    obs::trace::take_events()
}

#[test]
fn full_flow_leaves_a_well_formed_span_tree() {
    let _guard = lock();
    let events = traced_flow_events();
    let spans: HashMap<u64, &TraceEvent> =
        events.iter().filter(|e| e.kind == EventKind::Span).map(|e| (e.id, e)).collect();
    assert!(spans.len() >= 5, "expected a real timeline, got {} spans", spans.len());

    // ≥5 distinct span names, covering front end, covering, and routing
    let names: HashSet<&str> = spans.values().map(|e| e.name.as_str()).collect();
    for expected in ["flow", "decompose", "map.partition", "map.cover", "route.iter"] {
        assert!(names.contains(expected), "missing span {expected:?} in {names:?}");
    }

    for e in &events {
        // every recorded parent exists
        let Some(pid) = e.parent else { continue };
        let parent = spans
            .get(&pid)
            .unwrap_or_else(|| panic!("event {} ({}) has unknown parent {pid}", e.id, e.name));
        // same-thread nesting: a child runs on its parent's track
        assert_eq!(e.thread, parent.thread, "span {} crossed threads", e.name);
        // child intervals sit inside the parent (50 µs of clock slack:
        // start/end are sampled by different Instant reads)
        let eps = 50.0;
        assert!(
            e.start_us + eps >= parent.start_us
                && e.start_us + e.dur_us <= parent.start_us + parent.dur_us + eps,
            "span {} [{:.0}, {:.0}] escapes parent {} [{:.0}, {:.0}]",
            e.name,
            e.start_us,
            e.start_us + e.dur_us,
            parent.name,
            parent.start_us,
            parent.start_us + parent.dur_us,
        );
        // no cycles: walk to a root with a step budget
        let mut cursor = pid;
        let mut steps = 0;
        while let Some(next) = spans[&cursor].parent {
            cursor = next;
            steps += 1;
            assert!(steps <= events.len(), "parent cycle through span {}", e.name);
        }
    }
}

#[test]
fn trace_v1_round_trips_through_the_vendored_parser() {
    let _guard = lock();
    let events = traced_flow_events();
    let text = obs::trace::to_trace_json(&events).to_string_pretty();
    let doc = JsonValue::parse(&text).expect("casyn.trace.v1 must reparse");
    assert_eq!(doc.get("schema").unwrap().as_str(), Some("casyn.trace.v1"));
    let parsed = doc.get("events").unwrap().as_array().unwrap();
    assert_eq!(parsed.len(), events.len());
    for (j, e) in parsed.iter().zip(&events) {
        assert_eq!(j.get("name").unwrap().as_str(), Some(e.name.as_str()));
        assert_eq!(j.get("id").unwrap().as_f64(), Some(e.id as f64));
        assert_eq!(j.get("thread").unwrap().as_str(), Some(e.thread.as_str()));
    }
}

#[test]
fn chrome_sink_emits_complete_events_with_timing() {
    let _guard = lock();
    let events = traced_flow_events();
    let doc = obs::trace::to_chrome_trace(&events);
    let items = doc.as_array().expect("chrome trace is a bare event array");
    let complete: Vec<_> =
        items.iter().filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X")).collect();
    assert!(complete.len() >= 5);
    for e in &complete {
        assert!(e.get("ts").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("dur").unwrap().as_f64().unwrap() >= 0.0);
        assert!(e.get("tid").unwrap().as_f64().unwrap() >= 1.0);
        assert_eq!(e.get("pid").unwrap().as_f64(), Some(1.0));
        assert!(e.get("name").unwrap().as_str().is_some());
    }
}

#[test]
fn pool_sweep_spreads_spans_over_worker_tracks() {
    let _guard = lock();
    obs::trace::set_enabled(true);
    obs::trace::clear();
    let network = net(12);
    let opts = FlowOptions::default();
    let prep = prepare(&network, &opts).unwrap();
    // placement itself fans pair-refinement jobs out on a pool; drop its
    // spans so the counts below cover exactly the sweep's per-K jobs
    obs::trace::clear();
    let ks = [0.0, 0.1, 0.5, 1.0];
    let rows = k_sweep_prepared_pool(&prep, &ks, &opts, &Pool::new(2)).unwrap();
    assert_eq!(rows.len(), ks.len());
    obs::trace::set_enabled(false);
    let events = obs::trace::take_events();
    let worker_tracks: HashSet<&str> =
        events.iter().filter(|e| e.thread.starts_with('w')).map(|e| e.thread.as_str()).collect();
    assert!(
        worker_tracks.len() >= 2,
        "2-worker sweep must populate at least two worker tracks, got {worker_tracks:?}"
    );
    // every pool job ran inside an exec.job span on a worker track
    let jobs: Vec<_> =
        events.iter().filter(|e| e.kind == EventKind::Span && e.name == "exec.job").collect();
    assert_eq!(jobs.len(), ks.len());
    assert!(jobs.iter().all(|e| e.thread.starts_with('w')));
}

#[test]
fn tracing_never_changes_flow_results() {
    let _guard = lock();
    let network = net(13);
    let opts = FlowOptions::default();
    obs::trace::set_enabled(false);
    obs::trace::clear();
    let plain = congestion_flow(&network, 0.5, &opts).unwrap();
    obs::trace::set_enabled(true);
    obs::trace::clear();
    let traced = congestion_flow(&network, 0.5, &opts).unwrap();
    obs::trace::set_enabled(false);
    assert!(!obs::trace::take_events().is_empty());
    assert_eq!(plain.num_cells, traced.num_cells);
    assert_eq!(plain.cell_area, traced.cell_area);
    assert_eq!(plain.route.violations, traced.route.violations);
    assert_eq!(plain.route.total_wirelength, traced.route.total_wirelength);
    assert_eq!(plain.sta.critical_arrival(), traced.sta.critical_arrival());
}
