//! Determinism: the entire flow — generation, optimization, placement,
//! mapping, routing, timing — must be bit-reproducible run to run, since
//! the paper's methodology depends on regenerating mapped netlists from
//! one fixed technology-independent placement.

use casyn::flow::{congestion_flow, sis_flow, FlowOptions};
use casyn::netlist::bench::{random_pla, spla, PlaGenConfig};

fn net() -> casyn::netlist::network::Network {
    random_pla(&PlaGenConfig {
        inputs: 10,
        outputs: 6,
        terms: 40,
        min_literals: 3,
        max_literals: 6,
        mean_outputs_per_term: 1.4,
        seed: 2002,
    })
    .to_network()
}

#[test]
fn congestion_flow_is_deterministic() {
    let network = net();
    let opts = FlowOptions::default();
    let a = congestion_flow(&network, 0.2, &opts).unwrap();
    let b = congestion_flow(&network, 0.2, &opts).unwrap();
    assert_eq!(a.num_cells, b.num_cells);
    assert_eq!(a.cell_area, b.cell_area);
    assert_eq!(a.route.violations, b.route.violations);
    assert_eq!(a.route.total_wirelength, b.route.total_wirelength);
    assert_eq!(a.sta.critical_arrival(), b.sta.critical_arrival());
    // cell-by-cell equality
    for (ca, cb) in a.netlist.cells().iter().zip(b.netlist.cells()) {
        assert_eq!(ca.lib_cell, cb.lib_cell);
        assert_eq!(ca.inputs, cb.inputs);
        assert_eq!(ca.pos, cb.pos);
    }
}

#[test]
fn sis_flow_is_deterministic() {
    let network = net();
    let opts = FlowOptions::default();
    let a = sis_flow(&network, &opts).unwrap();
    let b = sis_flow(&network, &opts).unwrap();
    assert_eq!(a.num_cells, b.num_cells);
    assert_eq!(a.route.violations, b.route.violations);
}

#[test]
fn named_benchmarks_are_stable() {
    // the SPLA generator must keep producing the calibrated circuit —
    // a drifting generator would silently invalidate EXPERIMENTS.md
    let a = spla();
    let b = spla();
    assert_eq!(a.to_pla_string(), b.to_pla_string());
    assert_eq!(a.terms().len(), 2307);
}
