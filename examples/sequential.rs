//! Sequential synthesis: a BLIF design with flip-flops rides the
//! congestion-aware flow; registers pass through as DFF masters and the
//! clocked STA reports the minimum clock period.
//!
//! Run with: `cargo run --release --example sequential`

use casyn::flow::{sequential_flow, simulate_mapped_seq, FlowOptions};
use casyn::netlist::blif::Blif;

/// A 4-bit ripple-enable counter in BLIF.
const COUNTER: &str = "\
.model counter4
.inputs en
.outputs q0 q1 q2 q3
.latch d0 s0 0
.latch d1 s1 0
.latch d2 s2 0
.latch d3 s3 0
# carry chain: c0 = en, c1 = en & s0, c2 = c1 & s1, c3 = c2 & s2
# dk = sk XOR ck  (on-set rows only)
.names s0 en d0
10 1
01 1
.names en s0 c1
11 1
.names s1 c1 d1
10 1
01 1
.names c1 s1 c2
11 1
.names s2 c2 d2
10 1
01 1
.names c2 s2 c3
11 1
.names s3 c3 d3
10 1
01 1
.names s0 q0
1 1
.names s1 q1
1 1
.names s2 q2
1 1
.names s3 q3
1 1
.end
";

fn main() {
    let blif: Blif = COUNTER.parse().expect("embedded BLIF is valid");
    let seq = blif.into_seq();
    println!("{seq}");

    let opts = FlowOptions::default();
    let r = sequential_flow(&seq, 0.2, &opts).expect("sequential flow failed");
    println!(
        "\nmapped: {} cells ({} flip-flops), {:.0} um^2, {:.1}% utilization",
        r.flow.num_cells, r.num_dffs, r.flow.cell_area, r.flow.utilization_pct
    );
    println!(
        "routing violations: {}, routed wirelength {:.0} um",
        r.flow.route.violations, r.flow.route.total_wirelength
    );
    println!(
        "minimum clock period: {:.3} ns ({:.1} MHz)",
        r.min_clock_period,
        1000.0 / r.min_clock_period
    );

    // count 10 enabled cycles and verify against the golden model
    let stimulus: Vec<Vec<bool>> = (0..10).map(|_| vec![true]).collect();
    let golden = seq.simulate(&stimulus);
    let mapped = simulate_mapped_seq(&r.flow.netlist, &opts.lib, &stimulus);
    assert_eq!(golden, mapped, "mapped counter must count identically");
    println!("\ncycle-by-cycle count (en = 1):");
    for (t, bits) in mapped.iter().enumerate() {
        let value: u32 = bits.iter().enumerate().map(|(k, b)| (*b as u32) << k).sum();
        println!("  cycle {t}: {value}");
    }
    println!("\nmapped sequential netlist matches the golden model on all cycles.");
}
