//! The paper's Fig. 3 methodology: generate the technology-independent
//! netlist and its placement once, then increase the congestion
//! minimization factor K until the congestion map is acceptable.
//!
//! Run with: `cargo run --release --example methodology`

use casyn::flow::{run_methodology, FlowOptions};
use casyn::netlist::bench::{random_pla, PlaGenConfig};

fn main() {
    let pla = random_pla(&PlaGenConfig {
        inputs: 12,
        outputs: 10,
        terms: 220,
        min_literals: 3,
        max_literals: 7,
        mean_outputs_per_term: 1.4,
        seed: 71,
    });
    let network = pla.to_network();
    let opts = FlowOptions::default();
    // the K schedule of the paper's tables, starting at 0
    let schedule = [0.0, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01];
    // acceptance: no gcell above 98% of its track capacity
    let out = run_methodology(&network, &schedule, 0.98, &opts).expect("methodology failed");
    println!("Fig. 3 design-flow loop:");
    for step in &out.steps {
        println!(
            "  K = {:<8} peak congestion {:>5.1}%  violations {:>6}  {}",
            step.k,
            100.0 * step.max_util,
            step.violations,
            if step.accepted { "ACCEPT -> place & route" } else { "increase K" }
        );
    }
    if out.converged {
        let r = &out.result;
        println!(
            "\nconverged: {} cells, {:.0} um^2 ({:.1}% utilization), {} violations",
            r.num_cells, r.cell_area, r.utilization_pct, r.route.violations
        );
        println!(
            "critical path {} at {:.2} ns",
            r.sta.critical_endpoints(),
            r.sta.critical_arrival()
        );
    } else {
        println!("\ndid not converge: relax the floorplan (add rows) or resynthesize,");
        println!("as the paper prescribes when increasing K stops helping.");
    }
}
