//! Compare every partitioning scheme × cost function on one design:
//! cell count, area, estimated wirelength, tree statistics.
//!
//! Run with: `cargo run --release --example mapping_explorer`

use casyn::core::{map, CostKind, MapOptions, PartitionScheme};
use casyn::flow::FlowOptions;
use casyn::library::corelib018;
use casyn::logic::decompose;
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::place::{place_subject, Floorplan};

fn main() {
    let pla = random_pla(&PlaGenConfig {
        inputs: 12,
        outputs: 8,
        terms: 160,
        min_literals: 3,
        max_literals: 7,
        mean_outputs_per_term: 1.4,
        seed: 9,
    });
    let network = pla.to_network();
    let dec = decompose(&network);
    let (graph, _) = dec.graph.sweep();
    let lib = corelib018();
    let fp = Floorplan::with_area(graph.num_gates() as f64 * 12.0 / 0.6, 1.0);
    let opts = FlowOptions::default();
    let positions = place_subject(&graph, &fp, &opts.placer).expect("placement failed");
    println!(
        "design: {} base gates, {} inputs, {} outputs; die {:.0} um^2\n",
        graph.num_gates(),
        graph.inputs().len(),
        graph.outputs().len(),
        fp.die_area()
    );
    println!(
        "{:<18} {:<16} {:>7} {:>12} {:>10} {:>8} {:>8}",
        "partitioning", "cost", "cells", "area (um2)", "est. WL", "trees", "shared"
    );
    for (sname, scheme) in [
        ("dagon", PartitionScheme::Dagon),
        ("cone", PartitionScheme::Cone),
        ("placement-driven", PartitionScheme::PlacementDriven),
    ] {
        for (cname, cost) in [
            ("area", CostKind::Area),
            ("delay", CostKind::Delay),
            ("area+0.01*wire", CostKind::AreaWire { k: 0.01 }),
            ("area+1.0*wire", CostKind::AreaWire { k: 1.0 }),
        ] {
            let r =
                map(&graph, &positions, &lib, &MapOptions { scheme, cost, ..Default::default() });
            println!(
                "{:<18} {:<16} {:>7} {:>12.1} {:>10.0} {:>8} {:>8}",
                sname,
                cname,
                r.netlist.num_cells(),
                r.netlist.cell_area(),
                r.stats.est_wirelength,
                r.stats.num_trees,
                r.stats.duplicated_covers
            );
        }
    }
    println!("\ncell mix of the placement-driven area+wire mapping:");
    let r = map(
        &graph,
        &positions,
        &lib,
        &MapOptions {
            scheme: PartitionScheme::PlacementDriven,
            cost: CostKind::AreaWire { k: 0.01 },
            ..Default::default()
        },
    );
    let mut hist: Vec<(&str, usize)> = r.netlist.cell_histogram().into_iter().collect();
    hist.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    for (name, count) in hist {
        println!("  {name:<6} x{count}");
    }
}
