//! Quickstart: build a tiny circuit, map it for minimum area and with the
//! congestion-aware cost, and print both gate-level netlists.
//!
//! Run with: `cargo run --example quickstart`

use casyn::core::{map, CostKind, MapOptions, PartitionScheme};
use casyn::library::corelib018;
use casyn::netlist::subject::SubjectGraph;
use casyn::netlist::Point;

fn main() {
    // y = (a & b) | c, z = !(a & b) — the NAND (a & b) has two fanouts.
    let mut g = SubjectGraph::new();
    let a = g.add_input("a");
    let b = g.add_input("b");
    let c = g.add_input("c");
    let nab = g.add_nand2(a, b);
    let ic = g.add_inv(c);
    let n2 = g.add_nand2(nab, ic);
    g.add_output("y", n2); // ab + c
    g.add_output("z", nab); // !(ab)
    println!("subject graph: {} base gates, depth {}", g.num_gates(), g.depth());

    // a hand placement: a, b cluster bottom-left; c sits far right
    let mut pos = vec![Point::default(); g.num_vertices()];
    pos[a.index()] = Point::new(0.0, 0.0);
    pos[b.index()] = Point::new(0.0, 12.8);
    pos[c.index()] = Point::new(160.0, 6.4);
    pos[nab.index()] = Point::new(6.4, 6.4);
    pos[ic.index()] = Point::new(153.6, 6.4);
    pos[n2.index()] = Point::new(80.0, 6.4);

    let lib = corelib018();
    let min_area = map(&g, &pos, &lib, &MapOptions::default());
    println!("\n== minimum-area mapping (DAGON) ==");
    println!(
        "area {:.3} um^2, est. wirelength {:.1} um",
        min_area.netlist.cell_area(),
        min_area.stats.est_wirelength
    );
    print!("{}", min_area.netlist);

    let congestion = map(
        &g,
        &pos,
        &lib,
        &MapOptions {
            scheme: PartitionScheme::PlacementDriven,
            cost: CostKind::AreaWire { k: 2.0 },
            ..Default::default()
        },
    );
    println!("\n== congestion-aware mapping (K = 2.0) ==");
    println!(
        "area {:.3} um^2, est. wirelength {:.1} um",
        congestion.netlist.cell_area(),
        congestion.stats.est_wirelength
    );
    print!("{}", congestion.netlist);

    // both netlists implement the same functions
    for m in 0..8u32 {
        let asg = [m & 1 == 1, m & 2 == 2, m & 4 == 4];
        let want = g.simulate_outputs(&asg);
        let got_a = min_area.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg);
        let got_b = congestion.netlist.simulate_outputs_with(|c, p| lib.eval_cell(c, p), &asg);
        assert_eq!(want, got_a);
        assert_eq!(want, got_b);
    }
    println!("\nfunctional equivalence verified on all 8 input patterns.");
}
