//! Full flow on a PLA: parse (or generate) a two-level description, run
//! technology-independent optimization, decompose, place, map with the
//! congestion-aware cost, route and time — then print the congestion map.
//!
//! Run with: `cargo run --release --example pla_flow [path/to/file.pla]`

use casyn::flow::{congestion_flow, dagon_flow, FlowOptions};
use casyn::netlist::bench::{random_pla, PlaGenConfig};
use casyn::netlist::Pla;
use std::env;
use std::fs;

fn main() {
    let pla: Pla = match env::args().nth(1) {
        Some(path) => {
            let text =
                fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            text.parse().unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
        }
        None => {
            println!("no .pla argument given; generating a synthetic 12x8 PLA\n");
            random_pla(&PlaGenConfig {
                inputs: 12,
                outputs: 8,
                terms: 96,
                min_literals: 3,
                max_literals: 7,
                mean_outputs_per_term: 1.4,
                seed: 2002,
            })
        }
    };
    println!(
        "PLA: {} inputs, {} outputs, {} product terms",
        pla.num_inputs(),
        pla.num_outputs(),
        pla.terms().len()
    );
    let network = pla.to_network();
    println!("two-level network: {} literals", network.literal_count());

    let opts = FlowOptions::default();
    let baseline = dagon_flow(&network, &opts).expect("flow failed");
    println!(
        "\nDAGON baseline: {} cells, {:.0} um^2, {:.1}% utilization, {} routing violations",
        baseline.num_cells, baseline.cell_area, baseline.utilization_pct, baseline.route.violations
    );

    let aware = congestion_flow(&network, 0.001, &opts).expect("flow failed");
    println!(
        "congestion-aware (K = 0.001): {} cells, {:.0} um^2, {:.1}% utilization, {} violations",
        aware.num_cells, aware.cell_area, aware.utilization_pct, aware.route.violations
    );
    println!(
        "critical path: {} at {:.2} ns",
        aware.sta.critical_endpoints(),
        aware.sta.critical_arrival()
    );
    println!("\ncongestion map (`#` over capacity, `+` ≥ 80%, `-` ≥ 50%):");
    print!("{}", aware.route.congestion);
}
